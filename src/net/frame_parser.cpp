#include "net/frame_parser.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace gcr::net {

bool FrameParser::feed(const char* data, std::size_t n,
                       std::vector<Event>& out) {
  std::size_t i = 0;
  while (i < n && state_ != State::kDead) {
    switch (state_) {
      case State::kLine: {
        const void* nl = std::memchr(data + i, '\n', n - i);
        const std::size_t line_end =
            nl != nullptr
                ? static_cast<std::size_t>(static_cast<const char*>(nl) - data)
                : n;
        const std::size_t chunk = line_end - i;
        if (line_.size() + chunk > opts_.max_line) {
          line_.clear();
          Event ev;
          ev.kind = EventKind::kOverlongLine;
          ev.error = "command line exceeds " + std::to_string(opts_.max_line) +
                     " bytes";
          out.push_back(std::move(ev));
          state_ = State::kDiscardLine;
          break;  // kDiscardLine consumes from i
        }
        line_.append(data + i, chunk);
        i = line_end;
        if (nl != nullptr) {
          ++i;  // consume the LF
          finish_line(out);
        }
        break;
      }

      case State::kBody: {
        const std::size_t take = std::min(need_, n - i);
        body_.append(data + i, take);
        i += take;
        need_ -= take;
        if (need_ == 0) {
          Event ev;
          ev.kind = EventKind::kCommand;
          ev.line = std::move(load_line_);
          ev.body = std::move(body_);
          load_line_.clear();
          body_.clear();
          out.push_back(std::move(ev));
          state_ = State::kLine;
        }
        break;
      }

      case State::kSkipBody: {
        const std::size_t take = std::min(need_, n - i);
        i += take;
        need_ -= take;
        if (need_ == 0) state_ = State::kLine;
        break;
      }

      case State::kDiscardLine: {
        const void* nl = std::memchr(data + i, '\n', n - i);
        if (nl == nullptr) {
          i = n;
        } else {
          i = static_cast<std::size_t>(static_cast<const char*>(nl) - data) + 1;
          state_ = State::kLine;
        }
        break;
      }

      case State::kDead:
        break;
    }
  }
  return state_ != State::kDead;
}

bool FrameParser::finish_eof(std::vector<Event>& out) {
  switch (state_) {
    case State::kLine:
      if (!line_.empty()) finish_line(out);  // may emit kCommand / kFatal
      break;
    case State::kBody: {
      Event ev;
      ev.kind = EventKind::kFatal;
      ev.line = std::move(load_line_);
      ev.error = "LOAD body truncated (connection out of sync)";
      load_line_.clear();
      body_.clear();
      out.push_back(std::move(ev));
      state_ = State::kDead;
      break;
    }
    case State::kSkipBody:     // oversize LOAD already answered its ERR
    case State::kDiscardLine:  // overlong line already answered its ERR
    case State::kDead:
      break;
  }
  const bool clean = state_ != State::kDead;  // finish_line may go fatal
  state_ = State::kDead;  // no further input exists either way
  return clean;
}

void FrameParser::finish_line(std::vector<Event>& out) {
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  // Blank lines are keep-alives in the blocking loop too: no event.
  if (line_.find_first_not_of(" \t") == std::string::npos) {
    line_.clear();
    return;
  }

  // LOAD framing is the parser's business — the body length comes from the
  // command line.  Every other command passes through whole.
  std::istringstream is(line_);
  std::string kw;
  is >> kw;
  if (kw != "LOAD") {
    Event ev;
    ev.kind = EventKind::kCommand;
    ev.line = std::move(line_);
    line_.clear();
    out.push_back(std::move(ev));
    return;
  }

  unsigned long long nbytes = 0;
  try {
    nbytes = serve::parse_load_count(line_);
  } catch (const std::exception& e) {
    Event ev;
    ev.kind = EventKind::kFatal;
    ev.line = std::move(line_);
    ev.error = std::string(e.what()) + " (connection out of sync)";
    line_.clear();
    out.push_back(std::move(ev));
    state_ = State::kDead;
    return;
  }

  if (nbytes > opts_.max_load) {
    Event ev;
    ev.kind = EventKind::kOversizeLoad;
    ev.line = std::move(line_);
    // Match the blocking loop's wording at the default limit so both
    // front-ends speak identical bytes.
    ev.error = opts_.max_load == serve::kMaxLoadBytes
                   ? "LOAD body larger than 64 MiB"
                   : "LOAD body larger than " + std::to_string(opts_.max_load) +
                         " bytes";
    line_.clear();
    out.push_back(std::move(ev));
    need_ = static_cast<std::size_t>(nbytes);
    state_ = need_ > 0 ? State::kSkipBody : State::kLine;
    return;
  }

  if (nbytes == 0) {
    Event ev;
    ev.kind = EventKind::kCommand;
    ev.line = std::move(line_);
    line_.clear();
    out.push_back(std::move(ev));
    return;
  }

  load_line_ = std::move(line_);
  line_.clear();
  body_.clear();
  // Reserve only a bounded starter, not the declared size: a 15-byte
  // "LOAD <huge>" line must not pin max_load bytes per connection before a
  // single body byte arrives (amplification across many connections).
  // Memory then tracks bytes actually received, amortized by string growth.
  body_.reserve(std::min<std::size_t>(static_cast<std::size_t>(nbytes),
                                      64 * 1024));
  need_ = static_cast<std::size_t>(nbytes);
  state_ = State::kBody;
}

}  // namespace gcr::net
