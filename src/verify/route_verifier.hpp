#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/netlist_router.hpp"
#include "layout/layout.hpp"

/// \file route_verifier.hpp
/// Independent verification of global-routing results.
///
/// The router proper is validated against oracles in the test suite; this
/// module is the *deployment-side* checker a user runs on any routing result
/// before trusting it: every net's tree must be geometrically legal (inside
/// the boundary, never through a cell's open interior), electrically
/// connected (every terminal of the net reachable through the tree — checked
/// with a union-find over segment intersections, independent of how the
/// tree was built), and honestly accounted (reported wirelength equals the
/// geometric sum).

namespace gcr::verify {

struct RouteViolation {
  enum class Kind {
    kSegmentOutsideBoundary,
    kSegmentThroughCell,
    kTerminalNotConnected,
    kTreeDisconnected,        ///< tree splits into >1 connected component
    kWirelengthMismatch,
    kNetNotRouted,            ///< ok==false for a net that validate() accepts
  };
  Kind kind;
  std::size_t net = 0;
  std::string detail;
};

struct VerifyOptions {
  /// Treat unrouted nets as violations (off when verifying partial results,
  /// e.g. the sequential baseline).
  bool require_all_routed = true;
};

/// Checks every routed net of \p result against \p lay.  Empty result means
/// the routing is trustworthy.
[[nodiscard]] std::vector<RouteViolation> verify_routes(
    const layout::Layout& lay, const route::NetlistResult& result,
    const VerifyOptions& opts = {});

/// Single-net variant.
[[nodiscard]] std::vector<RouteViolation> verify_net(
    const layout::Layout& lay, std::size_t net_idx,
    const route::NetRoute& nr);

[[nodiscard]] std::string_view to_string(RouteViolation::Kind k) noexcept;

}  // namespace gcr::verify
