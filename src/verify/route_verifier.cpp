#include "verify/route_verifier.hpp"

#include <cstddef>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/steiner.hpp"
#include "spatial/obstacle_index.hpp"

namespace gcr::verify {

using geom::Point;
using geom::Segment;

namespace {

/// Union-find over tree node indices.
class DSU {
 public:
  explicit DSU(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::string seg_str(const Segment& s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

/// True when two axis-parallel segments touch: perpendicular crossing,
/// parallel overlap on the same track, or shared endpoint.
bool segments_touch(const Segment& a, const Segment& b) {
  if (a.crossing(b).has_value()) return true;
  if (a.degenerate() || b.degenerate()) {
    return a.degenerate() ? b.contains(a.a) : a.contains(b.a);
  }
  return a.axis() == b.axis() && a.track() == b.track() &&
         a.span().overlaps(b.span());
}

}  // namespace

std::vector<RouteViolation> verify_net(const layout::Layout& lay,
                                       std::size_t net_idx,
                                       const route::NetRoute& nr) {
  std::vector<RouteViolation> out;
  const auto add = [&](RouteViolation::Kind k, std::string d) {
    out.push_back(RouteViolation{k, net_idx, std::move(d)});
  };

  const spatial::ObstacleIndex index(lay.boundary(), lay.obstacles());

  // -- Geometric legality of every segment.
  for (const Segment& s : nr.segments) {
    if (!lay.boundary().contains(s.bounds())) {
      add(RouteViolation::Kind::kSegmentOutsideBoundary, seg_str(s));
    }
    if (index.segment_blocked(s)) {
      add(RouteViolation::Kind::kSegmentThroughCell, seg_str(s));
    }
  }

  // -- Honest accounting.
  geom::Cost geometric = 0;
  for (const Segment& s : nr.segments) geometric += s.length();
  if (geometric != nr.wirelength) {
    std::ostringstream os;
    os << "reported " << nr.wirelength << " vs geometric " << geometric;
    add(RouteViolation::Kind::kWirelengthMismatch, os.str());
  }

  // -- Electrical connectivity.  Union-find over segments *and* terminals:
  //    segments join where they touch, and a terminal joins every segment
  //    one of its pins lies on.  Terminals are connectivity nodes because a
  //    multi-pin terminal's pins are internally connected through its cell
  //    ("logically grouping all pins which belong to a terminal"), so two
  //    wire components attached to different pins of one terminal are
  //    electrically one net.
  const auto terminals =
      route::net_terminal_pins(lay, lay.nets()[net_idx]);
  if (terminals.size() < 2) return out;
  if (nr.segments.empty()) {
    add(RouteViolation::Kind::kTreeDisconnected, "net has no wire");
    return out;
  }
  const std::size_t seg_count = nr.segments.size();
  DSU dsu(seg_count + terminals.size());
  for (std::size_t i = 0; i < seg_count; ++i) {
    for (std::size_t j = i + 1; j < seg_count; ++j) {
      if (segments_touch(nr.segments[i], nr.segments[j])) dsu.unite(i, j);
    }
  }
  std::vector<bool> terminal_touches(terminals.size(), false);
  for (std::size_t t = 0; t < terminals.size(); ++t) {
    for (const Point& pin : terminals[t]) {
      for (std::size_t i = 0; i < seg_count; ++i) {
        if (nr.segments[i].contains(pin)) {
          dsu.unite(seg_count + t, i);
          terminal_touches[t] = true;
        }
      }
    }
  }
  // Every terminal: some pin physically on some segment.
  for (std::size_t t = 0; t < terminals.size(); ++t) {
    if (!terminal_touches[t]) {
      std::ostringstream os;
      os << "terminal #" << t << " (no pin touches the tree)";
      add(RouteViolation::Kind::kTerminalNotConnected, os.str());
    }
  }
  // Every segment and every terminal in one component.
  const std::size_t root = dsu.find(0);
  for (std::size_t i = 1; i < seg_count; ++i) {
    if (dsu.find(i) != root) {
      add(RouteViolation::Kind::kTreeDisconnected,
          "segment " + seg_str(nr.segments[i]) + " in a separate component");
      break;
    }
  }
  for (std::size_t t = 0; t < terminals.size(); ++t) {
    if (terminal_touches[t] && dsu.find(seg_count + t) != root) {
      std::ostringstream os;
      os << "terminal #" << t << " in a separate component";
      add(RouteViolation::Kind::kTreeDisconnected, os.str());
      break;
    }
  }
  return out;
}

std::vector<RouteViolation> verify_routes(const layout::Layout& lay,
                                          const route::NetlistResult& result,
                                          const VerifyOptions& opts) {
  std::vector<RouteViolation> out;
  for (std::size_t n = 0; n < result.routes.size(); ++n) {
    const route::NetRoute& nr = result.routes[n];
    if (!nr.ok) {
      if (opts.require_all_routed) {
        out.push_back(RouteViolation{RouteViolation::Kind::kNetNotRouted, n,
                                     lay.nets()[n].name()});
      }
      continue;
    }
    auto v = verify_net(lay, n, nr);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::string_view to_string(RouteViolation::Kind k) noexcept {
  using Kind = RouteViolation::Kind;
  switch (k) {
    case Kind::kSegmentOutsideBoundary: return "segment-outside-boundary";
    case Kind::kSegmentThroughCell: return "segment-through-cell";
    case Kind::kTerminalNotConnected: return "terminal-not-connected";
    case Kind::kTreeDisconnected: return "tree-disconnected";
    case Kind::kWirelengthMismatch: return "wirelength-mismatch";
    case Kind::kNetNotRouted: return "net-not-routed";
  }
  return "unknown";
}

}  // namespace gcr::verify
