#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/search_environment.hpp"
#include "layout/layout.hpp"
#include "pipeline/route_state.hpp"

/// \file layout_session.hpp
/// The session layer of the routing service.
///
/// Every `route_all` call used to rebuild the ObstacleIndex and the
/// EscapeLineSet from scratch; under serving traffic those builds dominate
/// request latency while being identical for every request against the same
/// layout.  A LayoutSession parses the text-format layout once and owns the
/// shared read-only SearchEnvironment; the SessionCache keys sessions by
/// layout *content* hash (FNV-1a over the request body), so two clients
/// uploading byte-identical layouts share one session — the same idea as a
/// connection/session manager in front of a fieldbus scanner: expensive
/// immutable state is established once and addressed by handle thereafter.

namespace gcr::serve {

/// Immutable once constructed; shared across worker threads by shared_ptr.
/// The environment serves independent-mode requests by reference and
/// sequential-mode requests by copy (the router clones it and commits wire
/// halos incrementally), so neither mode rebuilds per request.
struct LayoutSession {
  std::string key;             ///< content hash, 16 hex digits
  layout::Layout layout;       ///< parsed, validated problem
  route::SearchEnvironment env;  ///< obstacle index + escape lines
  /// Net name -> net index, built once so subset requests (`ROUTE ...
  /// nets=a,b`) resolve names without scanning the netlist per request.
  /// Duplicate names keep the first index (matching read_routes lookup).
  std::map<std::string, std::size_t> net_index;
  /// The committed global routes pipeline stages consume — the one mutable
  /// slot of the otherwise-immutable session.  A full ROUTE, REROUTE, or
  /// OPTIMIZE publishes its result here; the snapshot's content fingerprint
  /// feeds the stage-cache key, so replacing the routes invalidates every
  /// cached stage result without an explicit invalidation walk.
  mutable pipeline::RouteStateSlot routes;

  LayoutSession(std::string k, layout::Layout lay)
      : key(std::move(k)), layout(std::move(lay)), env(layout) {
    for (std::size_t i = 0; i < layout.nets().size(); ++i) {
      net_index.emplace(layout.nets()[i].name(), i);
    }
  }
};

/// Thread-safe LRU cache of layout sessions.
class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity = 8)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// FNV-1a 64-bit over the exact request bytes, as 16 lowercase hex digits
  /// — the session handle clients quote in ROUTE commands.
  [[nodiscard]] static std::string content_key(const std::string& text);

  /// Parses \p text (io::text_format), validates the layout, and inserts a
  /// session — or returns the cached one when the content hash is already
  /// resident (no parse, no environment build).  \p cache_hit, when
  /// non-null, reports which of the two happened (authoritative, unlike
  /// inferring it from counter deltas, which races with concurrent
  /// lookups).  Throws std::runtime_error (io::ParseError for malformed
  /// text, plain runtime_error listing the first placement violation for
  /// invalid layouts); untrusted request bodies must never become
  /// half-built sessions.
  std::shared_ptr<const LayoutSession> load(const std::string& text,
                                            bool* cache_hit = nullptr);

  /// Looks up a session by handle; nullptr when absent (expired or never
  /// loaded).  Refreshes LRU recency on hit but does not touch the
  /// hit/miss counters — those measure LOAD deduplication, not lookups.
  [[nodiscard]] std::shared_ptr<const LayoutSession> find(
      const std::string& key);

  /// Content probe: hashes \p text and returns the resident session, or
  /// nullptr without parsing or building anything.  A hit counts as a LOAD
  /// deduplication (it answers a LOAD), a miss counts nothing — the
  /// follow-up load() will record it.  The event-driven front-end uses this
  /// to answer repeat LOADs inline instead of burning a worker-pool trip.
  /// \p key_out, when non-null, receives the computed content key either
  /// way, so a miss can hand it to `load(text, key, …)` instead of hashing
  /// the body a second time.
  [[nodiscard]] std::shared_ptr<const LayoutSession> find_content(
      const std::string& text, std::string* key_out = nullptr);

  /// load() with a precomputed `content_key(text)` — the offloaded-LOAD
  /// path, whose admission probe already paid the hash.
  std::shared_ptr<const LayoutSession> load(const std::string& text,
                                            std::string key,
                                            bool* cache_hit = nullptr);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// LOAD-deduplication counters: a hit is a load() whose content was
  /// already resident (parse + environment build skipped).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const LayoutSession> session;
    std::list<std::string>::iterator recency;  ///< position in recency_
  };

  /// Moves \p entry to the front of the recency list (O(1)).  mu_ must be
  /// held — request admission touches on every lookup, so this must never
  /// scan.
  void touch(Entry& entry);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> recency_;  ///< most recent first
  std::map<std::string, Entry> sessions_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gcr::serve
