#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/stage_cache.hpp"
#include "serve/fair_queue.hpp"
#include "serve/layout_session.hpp"
#include "serve/metrics.hpp"
#include "serve/pinned_session.hpp"
#include "serve/trace.hpp"

/// \file routing_service.hpp
/// The serving facade: a persistent worker pool draining a bounded,
/// weighted-fair job queue of route requests against cached layout
/// sessions.
///
/// Request lifecycle:
///   submit  -> session resolved (miss fails fast, nothing queued)
///           -> admission through the bounded fair queue (full = rejected);
///              jobs shard by session key (pins by handle, LOADs by content
///              key, GENs together) and dequeue by deficit round-robin, so
///              one saturating session cannot starve its neighbors
///   worker  -> cancellation and deadline checked at dequeue
///           -> NetlistRouter::route_all over the session's shared
///              SearchEnvironment (no per-request index builds)
///   future  -> RouteResponse with result, status, and latency breakdown
///
/// Deadlines and cancellation are enforced at the queue boundary — a job
/// whose deadline passed while queued, or whose client hung up, is dropped
/// without routing — and cooperatively in flight: ROUTE/REROUTE check
/// between nets, OPTIMIZE at pass boundaries, and the pipeline stages
/// inside their own loops.  A stopped run is reported kExpired/kCancelled
/// and its partial result is discarded — never committed to the session or
/// cached.

namespace gcr::serve {

enum class RouteStatus {
  kOk,
  kSessionNotFound,  ///< ROUTE before LOAD (or evicted session)
  kRejected,         ///< queue full at admission
  kExpired,          ///< deadline passed while queued or mid-run
  kCancelled,        ///< cancel token set while queued or mid-run
  kError,            ///< routing threw (bad options, internal failure)
};

[[nodiscard]] const char* to_string(RouteStatus s) noexcept;

struct RouteRequest {
  std::string session_key;
  route::NetlistOptions opts;
  /// Net-name list (the protocol's `nets=a,b,c`): resolved against the
  /// session's netlist at admission — into `opts.subset` (ROUTE: route only
  /// these nets) or, when `reroute` is set, into `opts.reroute` (REROUTE:
  /// rip these up and re-route them last).  An unknown name fails the
  /// request with kError before anything is queued.  Duplicate names
  /// collapse to one entry.  Empty = whole netlist (ROUTE only).
  std::vector<std::string> net_names;
  /// REROUTE semantics: `net_names` is the rip-up set, routed against the
  /// committed remainder of a full sequential pass (see
  /// route::NetlistOptions::reroute).  The response dump is restricted to
  /// these nets, exactly like a subset request.
  bool reroute = false;
  /// OPTIMIZE semantics: run the iterated rip-up-and-reroute engine over
  /// the whole netlist instead of a single routing pass.  `net_names` must
  /// be empty; `opts.steiner`/`opts.wire_halo` still apply; the engine's
  /// own knobs ride in `optimize_passes`/`optimize_budget`; `deadline` and
  /// `cancel` are honored *at pass boundaries* too (not just at dequeue) —
  /// expiry mid-run returns the best routing so far rather than an error.
  bool optimize = false;
  /// Pipeline-stage semantics (DETAIL/CONGEST/VERIFY/SVG): run the selected
  /// stage against the session's committed routes instead of routing.
  /// `net_names` must be empty; `optimize`/`reroute` must be false.  A
  /// session with no committed routes first runs a default full sequential
  /// pass (deterministic) and commits it, so a stage verb works on a fresh
  /// session too.  Results are cached content-addressed — see StageCache.
  std::optional<pipeline::StageOptions> stage;
  /// Pass cap for OPTIMIZE; 0 = the engine default.
  std::size_t optimize_passes = 0;
  /// Wall-clock budget for OPTIMIZE; zero = unbounded.
  std::chrono::milliseconds optimize_budget{0};
  /// Per-pass progress hook for OPTIMIZE (may be empty).  Invoked on the
  /// worker thread after every completed pass; the front-ends stream each
  /// call as a `PASS` reply line.  Must not block or throw.
  route::OptimizeProgress progress;
  /// Zero (default) = no deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// Optional cooperative cancel token; set it to true to drop the request
  /// — before a worker picks it up, or mid-run at the engine's next check
  /// (between nets / at pass boundaries / inside stage loops).
  std::shared_ptr<std::atomic<bool>> cancel;
  /// `trace=1`: echo the request's span breakdown in the response meta.
  /// Spans are stamped unconditionally (a handful of clock reads against
  /// engine runs of >= 100 us) so the slow-request ring always has them;
  /// this flag only gates the rendering.
  bool trace = false;
  /// When the front-end read the command off the wire, stamped just before
  /// parsing — the origin of the trace's parse span.  Zero (default) = the
  /// parse span is not measured.
  std::chrono::steady_clock::time_point received{};
};

struct RouteResponse {
  RouteStatus status = RouteStatus::kError;
  std::string error;  ///< populated for kError
  /// The session the request routed against (null unless kOk); holding it
  /// keeps the layout alive while the caller renders the route dump.
  std::shared_ptr<const LayoutSession> session;
  route::NetlistResult result;
  /// The net indices the request covered (the resolved subset); empty when
  /// the whole netlist was routed.  Dump rendering must restrict itself to
  /// these — unlisted `result.routes` slots were never attempted.
  std::vector<std::size_t> nets;
  /// OPTIMIZE: the per-pass convergence curve (pass 1 first, wirelength
  /// and overflow non-increasing).  Empty for plain ROUTE/REROUTE.
  std::vector<route::OptimizePassStats> passes;
  /// Stage requests: the rendered stage output (null otherwise) and whether
  /// it was served from the stage cache.
  std::shared_ptr<const pipeline::StageResult> stage;
  bool stage_cached = false;
  std::chrono::microseconds queue_wait{0};  ///< submit -> dequeue
  std::chrono::microseconds latency{0};     ///< submit -> completion
  /// The span breakdown (always populated for worker-served requests;
  /// trace.total_us equals latency exactly — same clock read).
  RequestTrace trace;
  /// Echo of RouteRequest::trace: the front-end appends trace.render_meta()
  /// to the response meta iff set.
  bool traced = false;

  [[nodiscard]] bool ok() const noexcept { return status == RouteStatus::kOk; }
};

/// Completion callback for the asynchronous submit form.  Invoked exactly
/// once: inline on the submitting thread for fail-fast outcomes (unknown
/// session, unknown net, full queue), or on a worker thread after routing.
/// It must not block — the worker pool's throughput rides on it.
using RouteCallback = std::function<void(RouteResponse)>;

/// Outcome of an offloaded LOAD (parse + validate + environment build on a
/// worker instead of the caller's thread).
struct LoadResponse {
  bool ok = false;
  std::string error;  ///< parse/validation failure, or the rejection reason
  std::shared_ptr<const LayoutSession> session;  ///< set iff ok
  bool cache_hit = false;
};

/// Invoked exactly once, like RouteCallback: inline for a full queue, on a
/// worker thread otherwise.  Must not block.
using LoadCallback = std::function<void(LoadResponse)>;

/// A session-lifecycle request (PIN / UNPIN / COMMIT / UNCOMMIT / pinned
/// REROUTE / SAVE).  `owner` is the submitting connection's identity — its
/// cancel token, the same object the disconnect path flips — and gates
/// every mutation: only the owner may touch a pin.
struct PinRequest {
  enum class Op { kPin, kUnpin, kCommit, kUncommit, kReroute, kSave };
  Op op = Op::kPin;
  /// PIN: a cached session key (derive) or an existing handle (claim);
  /// everything else: the pin handle.
  std::string key;
  /// COMMIT/UNCOMMIT/REROUTE: the net-name list, resolved against the
  /// pin's layout on the worker.
  std::vector<std::string> nets;
  /// SAVE: the snapshot file name (validated — no path separators).
  std::string save_name;
  /// Wire spacing halo for committed segments (COMMIT/REROUTE).
  geom::Coord wire_halo = 1;
  std::shared_ptr<std::atomic<bool>> owner;
  /// Service-internal request (the periodic autosave sweep): bypasses the
  /// ownership gate so an owned pin can be snapshotted without claiming
  /// it.  Never set by the protocol parser — unreachable from the wire.
  bool system = false;
};

struct PinResponse {
  RouteStatus status = RouteStatus::kError;
  std::string error;
  std::string handle;
  std::string base_key;
  std::size_t nets_total = 0;  ///< nets in the pin's layout
  std::size_t committed = 0;   ///< nets currently recorded in the pin
  std::size_t removed = 0;     ///< UNCOMMIT: entries cleared
  std::size_t routed = 0;      ///< COMMIT/REROUTE: ok nets this op
  std::size_t failed = 0;      ///< COMMIT/REROUTE: failed nets this op
  geom::Cost wirelength = 0;   ///< COMMIT/REROUTE: total over this op's nets
  std::string body;            ///< COMMIT/REROUTE: route dump of this op's nets
  std::uint64_t save_bytes = 0;  ///< SAVE: blob size written
  std::chrono::microseconds queue_wait{0};
  std::chrono::microseconds latency{0};

  [[nodiscard]] bool ok() const noexcept { return status == RouteStatus::kOk; }
};

/// Invoked exactly once: inline for fail-fast outcomes (unknown key, not
/// the owner, full queue, inline claims) or on a worker thread.  Must not
/// block.
using PinCallback = std::function<void(PinResponse)>;

class RoutingService {
 public:
  struct Options {
    /// 0 = one worker per hardware thread.
    std::size_t workers = 0;
    std::size_t queue_capacity = 64;
    std::size_t cache_capacity = 8;
    /// Stage results are small relative to sessions (text renderings, not
    /// obstacle indexes), so the default holds several per session.
    std::size_t stage_cache_capacity = 32;
    /// SAVE target directory; empty = snapshots disabled (SAVE answers ERR).
    std::string snapshot_dir;
    /// Directory scanned at construction: every decodable snapshot becomes
    /// a registered (unowned) pin — the rolling-restart rehydration path.
    /// Corrupt or truncated files are skipped with a stderr warning; they
    /// never produce a half-restored session.
    std::string restore_dir;
    /// Slow-request ring admission threshold (the daemon's --slow-ms).
    /// 0 = no threshold: the ring keeps the top-N slowest requests seen.
    std::uint64_t slow_threshold_ms = 0;
    /// How many slow-request traces the TRACE verb can dump.
    std::size_t slow_ring_capacity = 32;
    /// Background SAVE period for registered pins (the daemon's
    /// --snapshot-interval-s): every interval, each pin gets a system SAVE
    /// job riding its ticket chain, so a crash loses at most one
    /// interval's mutations instead of everything since the last explicit
    /// SAVE.  0 = disabled; requires snapshot_dir.
    std::size_t snapshot_interval_s = 0;
  };

  RoutingService() : RoutingService(Options{}) {}
  explicit RoutingService(const Options& opts);
  ~RoutingService();  ///< closes the queue and joins the pool

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Parses + caches a layout (see SessionCache::load).  Throws
  /// std::runtime_error on malformed or invalid layouts.
  std::shared_ptr<const LayoutSession> load(const std::string& text,
                                            bool* cache_hit = nullptr);

  /// Non-blocking admission.  The returned future is always valid; a
  /// request that cannot be served (unknown session, full queue) completes
  /// immediately with the corresponding status.
  [[nodiscard]] std::future<RouteResponse> submit(RouteRequest req);

  /// Callback form of admission — the event-driven front-end's entry point
  /// (src/net/): no future to block on, \p done fires with the response
  /// wherever it materializes (see RouteCallback).  The callback typically
  /// formats the response and posts it to the event loop's wakeup mailbox.
  void submit(RouteRequest req, RouteCallback done);

  /// Offloads a LOAD — layout parse, validation, and the expensive
  /// environment build — to the worker pool instead of the calling thread;
  /// the event loop's defence against a cold-session storm stalling every
  /// connection.  \p key is the precomputed `SessionCache::content_key` of
  /// \p text (the caller's admission probe already hashed the body; the
  /// worker must not pay that again).  \p done fires on a worker (or
  /// inline with a rejection when the queue is full).  \p cancel, when set
  /// at dequeue, skips the build — the peer is gone and nobody wants the
  /// session (the callback still fires, with ok=false).
  void submit_load(std::string text, std::string key,
                   std::shared_ptr<std::atomic<bool>> cancel,
                   LoadCallback done);

  /// Offloads a GEN: \p synth runs on a worker to produce the layout text
  /// (at the parse caps synthesis alone can run for seconds — far too long
  /// for the event-loop thread), then the text takes the LOAD path on the
  /// same worker — content probe, session build, cache insert.  \p synth
  /// may throw; the failure comes back as ok=false.  \p cancel and \p done
  /// behave exactly as in submit_load.
  void submit_gen(std::function<std::string()> synth,
                  std::shared_ptr<std::atomic<bool>> cancel,
                  LoadCallback done);

  /// Closed-loop convenience: submit and wait.
  [[nodiscard]] RouteResponse route(RouteRequest req);

  /// Session-lifecycle admission.  Claims of an existing handle resolve
  /// inline (registry mutation only); PIN-derive and every mutating op run
  /// on the worker pool.  Mutations of one pin apply in submission order —
  /// a per-pin FIFO ticket chain layered over the queue (see
  /// pinned_session.hpp) — and the ownership check runs both at admission
  /// and again on the worker, so a pin released mid-queue fails cleanly.
  void submit_pin(PinRequest req, PinCallback done);

  /// Closed-loop convenience: submit_pin and wait.
  [[nodiscard]] PinResponse pin_op(PinRequest req);

  /// Releases every pin owned by \p owner — the disconnect auto-release
  /// hook, called by both front-ends when a connection ends (the epoll
  /// loop from close_connection, the blocking loop at serve_connection
  /// exit).  With \p preserve (the event loop's drain path during
  /// shutdown) the pins stay registered unowned instead of being
  /// destroyed, so final_save_pins can still snapshot them.
  void release_pins(const std::shared_ptr<std::atomic<bool>>& owner,
                    bool preserve = false);

  /// Shutdown final SAVE: snapshots every registered pin to snapshot_dir
  /// under its handle name, bracketing each save on the pin's ticket chain
  /// — a mutation still in flight (or queued by a force-closed
  /// connection) finishes before its pin serializes, never mid-op.  Call
  /// after the front-end has drained; no-op without a snapshot_dir.
  /// Returns how many snapshots were written.
  std::size_t final_save_pins();

  [[nodiscard]] PinRegistry& pins() noexcept { return pins_; }

  [[nodiscard]] SessionCache& sessions() noexcept { return cache_; }
  [[nodiscard]] pipeline::StageCache& stages() noexcept {
    return stage_cache_;
  }
  /// GEN accounting: the front-ends synthesize the workload (on their own
  /// path — inline or via submit_load) and report the outcome here.
  void record_gen(bool ok) noexcept {
    (ok ? metrics_.gens_ok : metrics_.gens_failed)
        .fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// The STATS response body: the metrics snapshot plus whatever the
  /// registered extra-stats hook (the TCP front-end's loop-health section)
  /// appends.
  [[nodiscard]] std::string stats_text() const;

  /// Registers a hook whose output is appended verbatim to stats_text() —
  /// how the event loop exports its health without the service knowing
  /// about epoll.  Pass an empty function to clear (the loop's destructor
  /// must, before its counters die).  The hook may be called from any
  /// thread and must only read lock-free state.
  void set_extra_stats(std::function<std::string()> extra);

  /// Records one sample into a verb's latency shard — for request kinds
  /// served outside the worker pool (the front-ends' inline STATS render).
  void record_verb_latency(VerbKind kind, std::uint64_t micros) noexcept {
    metrics_.verb_latency[static_cast<std::size_t>(kind)].record(micros);
  }

  /// Up to \p n completed slow-request traces, slowest first (TRACE verb).
  [[nodiscard]] std::vector<SlowRecord> slow_requests(std::size_t n) const {
    return slow_ring_.top(n);
  }
  [[nodiscard]] std::uint64_t slow_threshold_ms() const noexcept {
    return opts_.slow_threshold_ms;
  }

  /// Whole seconds since this service instance was constructed.
  [[nodiscard]] std::uint64_t uptime_s() const;

 private:
  struct Job {
    enum class Kind { kRoute, kLoad, kPin };
    Kind kind = Kind::kRoute;
    /// Which latency shard and TRACE label this job belongs to.
    VerbKind verb = VerbKind::kRoute;
    /// Admission sequence number (TRACE output id) and the span stamps,
    /// written by submit/worker and folded into the response at finish.
    std::uint64_t id = 0;
    RequestTrace trace;
    // kRoute fields.
    RouteRequest req;
    std::shared_ptr<const LayoutSession> session;
    RouteCallback done;
    // kLoad fields.
    std::string load_text;
    std::string load_key;  ///< content_key(load_text), hashed at admission
    /// GEN: synthesizes the layout text on the worker (load_text/load_key
    /// unused; the worker hashes the synthesized body itself).
    std::function<std::string()> load_synth;
    std::shared_ptr<std::atomic<bool>> load_cancel;
    LoadCallback load_done;
    // kPin fields.
    PinRequest pin_req;
    /// Resolved at admission for mutating ops (kPin-derive resolves the
    /// base session into `session` instead); holding it keeps the pin's
    /// state alive even if it is released while this job is queued.
    std::shared_ptr<PinnedSession> pin;
    std::uint64_t pin_ticket = 0;
    PinCallback pin_done;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();
  void autosave_loop();
  void run_load_job(Job& job);
  void run_stage_job(Job& job, RouteResponse& resp);
  void run_pin_job(Job& job);
  void run_pin_mutation(Job& job, PinResponse& resp);
  void save_pin(const PinnedSession& pin, const std::string& name,
                PinResponse& resp);
  void restore_pins(const std::string& dir);
  void finish(Job& job, RouteResponse&& resp);
  void finish_pin(Job& job, PinResponse&& resp);

  Options opts_;
  SessionCache cache_;
  pipeline::StageCache stage_cache_;
  FairQueue<Job> queue_;
  ServiceMetrics metrics_;
  PinRegistry pins_;
  std::chrono::steady_clock::time_point start_;
  SlowRequestRing slow_ring_;
  std::atomic<std::uint64_t> trace_ids_{0};
  mutable std::mutex extra_stats_mu_;
  std::function<std::string()> extra_stats_;
  /// The autosave sweep's connection identity: submitted system SAVEs need
  /// an owner token (never flipped — the service does not hang up).
  std::shared_ptr<std::atomic<bool>> system_owner_ =
      std::make_shared<std::atomic<bool>>(false);
  std::mutex autosave_mu_;
  std::condition_variable autosave_cv_;
  bool autosave_stop_ = false;
  std::vector<std::thread> workers_;
  std::thread autosaver_;  ///< running iff snapshot_interval_s > 0
};

}  // namespace gcr::serve
