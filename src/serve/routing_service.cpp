#include "serve/routing_service.hpp"

#include <exception>
#include <utility>

#include "pipeline/stage_runner.hpp"

namespace gcr::serve {

namespace {

std::uint64_t micros_between(std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

const char* to_string(RouteStatus s) noexcept {
  switch (s) {
    case RouteStatus::kOk: return "ok";
    case RouteStatus::kSessionNotFound: return "session_not_found";
    case RouteStatus::kRejected: return "rejected";
    case RouteStatus::kExpired: return "deadline_expired";
    case RouteStatus::kCancelled: return "cancelled";
    case RouteStatus::kError: return "error";
  }
  return "unknown";
}

RoutingService::RoutingService(const Options& opts)
    : cache_(opts.cache_capacity),
      stage_cache_(opts.stage_cache_capacity),
      queue_(opts.queue_capacity) {
  const std::size_t n = route::resolve_worker_count(opts.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RoutingService::~RoutingService() {
  queue_.close();
  for (std::thread& t : workers_) t.join();
  // Workers have drained the queue: every accepted job's callback has fired.
}

std::shared_ptr<const LayoutSession> RoutingService::load(
    const std::string& text, bool* cache_hit) {
  return cache_.load(text, cache_hit);
}

std::future<RouteResponse> RoutingService::submit(RouteRequest req) {
  auto p = std::make_shared<std::promise<RouteResponse>>();
  std::future<RouteResponse> fut = p->get_future();
  submit(std::move(req),
         [p](RouteResponse resp) { p->set_value(std::move(resp)); });
  return fut;
}

void RoutingService::submit(RouteRequest req, RouteCallback done) {
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();

  const auto fail_now = [&](RouteStatus status, std::string error = {}) {
    RouteResponse resp;
    resp.status = status;
    resp.error = std::move(error);
    done(std::move(resp));
  };

  // Resolve the session at admission: an unknown handle must fail fast, not
  // burn a queue slot and a worker wake-up.
  std::shared_ptr<const LayoutSession> session = cache_.find(req.session_key);
  if (session == nullptr) {
    metrics_.requests_not_found.fetch_add(1, std::memory_order_relaxed);
    return fail_now(RouteStatus::kSessionNotFound);
  }

  // Resolve a net-name list against the session while we still can answer
  // with a precise diagnostic; by worker time the client context is gone.
  // ROUTE lists become a subset restriction, REROUTE lists the rip-up set.
  if (!req.net_names.empty()) {
    std::vector<std::size_t> indices;
    indices.reserve(req.net_names.size());
    std::vector<bool> taken(session->layout.nets().size(), false);
    for (const std::string& name : req.net_names) {
      const auto it = session->net_index.find(name);
      if (it == session->net_index.end()) {
        metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
        return fail_now(RouteStatus::kError, "unknown net '" + name + "'");
      }
      if (taken[it->second]) continue;  // duplicate name: route once
      taken[it->second] = true;
      indices.push_back(it->second);
    }
    if (req.reroute) {
      req.opts.reroute = std::move(indices);
      req.opts.subset.clear();
    } else {
      req.opts.subset = std::move(indices);
    }
  }

  Job job;
  job.req = std::move(req);
  job.session = std::move(session);
  job.done = std::move(done);
  job.submitted = now;
  if (!queue_.try_push(std::move(job))) {
    // try_push moves only on success, so the rejected job still owns its
    // callback and can deliver the rejection.
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    RouteResponse resp;
    resp.status = RouteStatus::kRejected;
    job.done(std::move(resp));
  }
}

RouteResponse RoutingService::route(RouteRequest req) {
  return submit(std::move(req)).get();
}

void RoutingService::submit_load(std::string text, std::string key,
                                 std::shared_ptr<std::atomic<bool>> cancel,
                                 LoadCallback done) {
  metrics_.loads_offloaded.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kLoad;
  job.load_text = std::move(text);
  job.load_key = std::move(key);
  job.load_cancel = std::move(cancel);
  job.load_done = std::move(done);
  job.submitted = std::chrono::steady_clock::now();
  if (!queue_.try_push(std::move(job))) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
    LoadResponse resp;
    resp.error = "rejected";
    job.load_done(std::move(resp));
  }
}

void RoutingService::submit_gen(std::function<std::string()> synth,
                                std::shared_ptr<std::atomic<bool>> cancel,
                                LoadCallback done) {
  metrics_.loads_offloaded.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kLoad;
  job.load_synth = std::move(synth);
  job.load_cancel = std::move(cancel);
  job.load_done = std::move(done);
  job.submitted = std::chrono::steady_clock::now();
  if (!queue_.try_push(std::move(job))) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
    LoadResponse resp;
    resp.error = "rejected";
    job.load_done(std::move(resp));
  }
}

void RoutingService::run_load_job(Job& job) {
  // Deliberately not recorded into the latency/queue-wait windows: those
  // are what STATS reports as *routing* percentiles, and one cold
  // environment build would distort p95/p99 for every dashboard reading
  // them.  The loads_* counters below are the LOAD-side observability.
  LoadResponse resp;
  if (job.load_cancel &&
      job.load_cancel->load(std::memory_order_relaxed)) {
    resp.error = "cancelled";  // peer gone: skip the expensive build
  } else {
    try {
      if (job.load_synth) {
        // GEN: synthesize here, then load by content — the worker hashes
        // the body it just produced (no admission-time probe existed).
        resp.session = cache_.load(job.load_synth(), &resp.cache_hit);
      } else {
        resp.session = cache_.load(job.load_text, std::move(job.load_key),
                                   &resp.cache_hit);
      }
      resp.ok = true;
      metrics_.loads_ok.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      resp.error = e.what();
    }
  }
  if (!resp.ok) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  job.load_done(std::move(resp));
}

void RoutingService::worker_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;  // closed and drained

    if (job->kind == Job::Kind::kLoad) {
      run_load_job(*job);
      continue;
    }

    const auto dequeued = std::chrono::steady_clock::now();
    RouteResponse resp;
    resp.queue_wait = std::chrono::microseconds(
        micros_between(job->submitted, dequeued));
    metrics_.queue_wait.record(
        static_cast<std::uint64_t>(resp.queue_wait.count()));

    if (job->req.cancel && job->req.cancel->load(std::memory_order_relaxed)) {
      resp.status = RouteStatus::kCancelled;
      metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
      finish(*job, std::move(resp));
      continue;
    }
    if (job->req.deadline != std::chrono::steady_clock::time_point{} &&
        dequeued > job->req.deadline) {
      resp.status = RouteStatus::kExpired;
      metrics_.requests_expired.fetch_add(1, std::memory_order_relaxed);
      finish(*job, std::move(resp));
      continue;
    }

    if (job->req.stage.has_value()) {
      run_stage_job(*job, resp);
      finish(*job, std::move(resp));
      continue;
    }

    try {
      // The session's environment is injected, so this call performs no
      // ObstacleIndex / EscapeLineSet construction — the cache already paid
      // for both.  That holds for *sequential* mode too: the router copies
      // the shared environment and absorbs routed nets with incremental
      // commit_route updates instead of per-net rebuilds.
      if (job->req.optimize) {
        route::OptimizeOptions oopts;
        oopts.steiner = job->req.opts.steiner;
        oopts.wire_halo = job->req.opts.wire_halo;
        if (job->req.optimize_passes > 0) {
          oopts.max_passes = job->req.optimize_passes;
        }
        oopts.budget = job->req.optimize_budget;
        oopts.deadline = job->req.deadline;
        oopts.cancel = job->req.cancel;
        oopts.progress = job->req.progress;
        const route::Optimizer optimizer(job->session->layout,
                                         job->session->env);
        route::OptimizeReport report = optimizer.run(oopts);
        if (report.cancelled) {
          // The client vanished mid-run (pass-boundary check): nothing
          // wants the result.  PASS lines already streamed are fine — the
          // peer that would have read them is gone.
          resp.status = RouteStatus::kCancelled;
          metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
          finish(*job, std::move(resp));
          continue;
        }
        resp.result = std::move(report.result);
        resp.passes = std::move(report.passes);
        metrics_.optimizes_ok.fetch_add(1, std::memory_order_relaxed);
        metrics_.optimize_passes.fetch_add(
            resp.passes.empty() ? 0 : resp.passes.size() - 1,
            std::memory_order_relaxed);
      } else {
        const route::NetlistRouter router(job->session->layout,
                                          job->session->env);
        job->req.opts.deadline = job->req.deadline;
        job->req.opts.cancel = job->req.cancel;
        resp.result = router.route_all(job->req.opts);
        if (resp.result.cancelled) {
          // Stopped between nets: the partial result must not be dumped,
          // committed, or counted.  Attribute like the dequeue checks do.
          const bool was_cancel =
              job->req.cancel &&
              job->req.cancel->load(std::memory_order_relaxed);
          resp.result = {};
          resp.status =
              was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
          (was_cancel ? metrics_.requests_cancelled
                      : metrics_.requests_expired)
              .fetch_add(1, std::memory_order_relaxed);
          finish(*job, std::move(resp));
          continue;
        }
      }
      resp.session = job->session;
      // The dump restriction: the subset that was routed, or — for a
      // rip-up — the nets that were re-routed (the rest of the netlist was
      // only the committed backdrop).
      resp.nets = job->req.reroute ? job->req.opts.reroute
                                   : job->req.opts.subset;
      // Publish full-netlist results (ROUTE of everything, REROUTE — whose
      // result carries the whole netlist around the rip-up set — and
      // OPTIMIZE) as the session's committed routes.  The fingerprint in
      // the snapshot re-keys the stage cache, so a mutated routing
      // invalidates cached stage results while a byte-identical re-commit
      // keeps them hot.  Subset ROUTEs never commit: their result holds
      // only the requested nets.
      if (job->req.optimize || job->req.reroute ||
          job->req.opts.subset.empty()) {
        job->session->routes.set(resp.result);
      }
      resp.status = RouteStatus::kOk;
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      metrics_.nets_routed.fetch_add(resp.result.routed,
                                     std::memory_order_relaxed);
      metrics_.nets_failed.fetch_add(resp.result.failed,
                                     std::memory_order_relaxed);
    } catch (const std::exception& e) {
      resp.status = RouteStatus::kError;
      resp.error = e.what();
      metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
    }
    finish(*job, std::move(resp));
  }
}

void RoutingService::run_stage_job(Job& job, RouteResponse& resp) {
  const pipeline::StageOptions& sopts = *job.req.stage;
  try {
    // The stage consumes the committed routes.  A fresh session has none:
    // run the default full sequential pass once and commit it, so `LOAD;
    // DETAIL` works without an explicit ROUTE — and later stages (and
    // ROUTEs) share that exact snapshot.
    std::shared_ptr<const pipeline::CommittedRoutes> state =
        job.session->routes.get();
    if (state == nullptr) {
      const route::NetlistRouter router(job.session->layout,
                                        job.session->env);
      // The implicit route honors the stage request's deadline and cancel
      // token (checked between nets) — on a large GEN'd session it can
      // dwarf the stage itself.  A stopped route is never committed: the
      // next request starts from a clean no-routes slot.
      route::NetlistOptions ropts;
      ropts.deadline = job.req.deadline;
      ropts.cancel = job.req.cancel;
      route::NetlistResult routed = router.route_all(ropts);
      if (routed.cancelled) {
        const bool was_cancel =
            job.req.cancel &&
            job.req.cancel->load(std::memory_order_relaxed);
        resp.status =
            was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
        (was_cancel ? metrics_.requests_cancelled : metrics_.requests_expired)
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      state = job.session->routes.set(std::move(routed));
    }

    const std::string key = pipeline::StageCache::key_for(
        job.session->key, state->fingerprint, sopts.fingerprint());
    std::shared_ptr<const pipeline::StageResult> cached =
        stage_cache_.find(key);
    if (cached != nullptr) {
      resp.stage = std::move(cached);
      resp.stage_cached = true;
    } else {
      const pipeline::StageContext ctx{job.session->layout,
                                       job.session->env, state->result,
                                       job.req.cancel, job.req.deadline};
      pipeline::StageOutcome out = pipeline::run_stage(ctx, sopts);
      if (out.result == nullptr) {
        // Stopped inside the engine: attribute it like the dequeue checks
        // do — cancel token wins, otherwise it was the deadline.
        const bool was_cancel =
            job.req.cancel &&
            job.req.cancel->load(std::memory_order_relaxed);
        resp.status =
            was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
        (was_cancel ? metrics_.requests_cancelled : metrics_.requests_expired)
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stage_cache_.insert(key, out.result);
      resp.stage = std::move(out.result);
    }
    resp.session = job.session;
    resp.status = RouteStatus::kOk;
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    metrics_.stages_ok.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    resp.status = RouteStatus::kError;
    resp.error = e.what();
    metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
    metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
  }
}

void RoutingService::finish(Job& job, RouteResponse&& resp) {
  resp.latency = std::chrono::microseconds(
      micros_between(job.submitted, std::chrono::steady_clock::now()));
  metrics_.latency.record(static_cast<std::uint64_t>(resp.latency.count()));
  job.done(std::move(resp));
}

MetricsSnapshot RoutingService::snapshot() const {
  MetricsSnapshot s;
  s.requests_submitted =
      metrics_.requests_submitted.load(std::memory_order_relaxed);
  s.requests_ok = metrics_.requests_ok.load(std::memory_order_relaxed);
  s.requests_rejected =
      metrics_.requests_rejected.load(std::memory_order_relaxed);
  s.requests_expired =
      metrics_.requests_expired.load(std::memory_order_relaxed);
  s.requests_cancelled =
      metrics_.requests_cancelled.load(std::memory_order_relaxed);
  s.requests_not_found =
      metrics_.requests_not_found.load(std::memory_order_relaxed);
  s.requests_errored =
      metrics_.requests_errored.load(std::memory_order_relaxed);
  s.nets_routed = metrics_.nets_routed.load(std::memory_order_relaxed);
  s.nets_failed = metrics_.nets_failed.load(std::memory_order_relaxed);
  s.loads_offloaded = metrics_.loads_offloaded.load(std::memory_order_relaxed);
  s.loads_ok = metrics_.loads_ok.load(std::memory_order_relaxed);
  s.loads_failed = metrics_.loads_failed.load(std::memory_order_relaxed);
  s.optimizes_ok = metrics_.optimizes_ok.load(std::memory_order_relaxed);
  s.optimize_passes =
      metrics_.optimize_passes.load(std::memory_order_relaxed);
  s.stages_ok = metrics_.stages_ok.load(std::memory_order_relaxed);
  s.stages_failed = metrics_.stages_failed.load(std::memory_order_relaxed);
  s.gens_ok = metrics_.gens_ok.load(std::memory_order_relaxed);
  s.gens_failed = metrics_.gens_failed.load(std::memory_order_relaxed);
  s.stage_cache_hits = stage_cache_.hits();
  s.stage_cache_misses = stage_cache_.misses();
  s.stage_cache_evictions = stage_cache_.evictions();
  s.stage_cache_size = stage_cache_.size();
  s.latency_p50_us = metrics_.latency.percentile(50);
  s.latency_p95_us = metrics_.latency.percentile(95);
  s.latency_p99_us = metrics_.latency.percentile(99);
  s.queue_wait_p50_us = metrics_.queue_wait.percentile(50);
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.workers = workers_.size();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_size = cache_.size();
  return s;
}

std::string RoutingService::stats_text() const { return snapshot().to_text(); }

}  // namespace gcr::serve
