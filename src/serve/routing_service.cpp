#include "serve/routing_service.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <utility>

#include "core/steiner.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "pipeline/stage_runner.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"

namespace gcr::serve {

namespace {

std::uint64_t micros_between(std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// The latency shard a route-family request records into.
VerbKind classify_verb(const RouteRequest& req) {
  if (req.stage.has_value()) {
    switch (req.stage->kind) {
      case pipeline::StageKind::kDetail: return VerbKind::kDetail;
      case pipeline::StageKind::kCongest: return VerbKind::kCongest;
      case pipeline::StageKind::kVerify: return VerbKind::kVerify;
      case pipeline::StageKind::kSvg: return VerbKind::kSvg;
    }
  }
  if (req.optimize) return VerbKind::kOptimize;
  if (req.reroute) return VerbKind::kReroute;
  return VerbKind::kRoute;
}

}  // namespace

const char* to_string(RouteStatus s) noexcept {
  switch (s) {
    case RouteStatus::kOk: return "ok";
    case RouteStatus::kSessionNotFound: return "session_not_found";
    case RouteStatus::kRejected: return "rejected";
    case RouteStatus::kExpired: return "deadline_expired";
    case RouteStatus::kCancelled: return "cancelled";
    case RouteStatus::kError: return "error";
  }
  return "unknown";
}

RoutingService::RoutingService(const Options& opts)
    : opts_(opts),
      cache_(opts.cache_capacity),
      stage_cache_(opts.stage_cache_capacity),
      queue_(opts.queue_capacity),
      start_(std::chrono::steady_clock::now()),
      slow_ring_(opts.slow_ring_capacity, opts.slow_threshold_ms * 1000) {
  // Rehydrate snapshotted pins before the workers start, so restored
  // sessions are addressable from the very first request.
  if (!opts_.restore_dir.empty()) restore_pins(opts_.restore_dir);
  const std::size_t n = route::resolve_worker_count(opts.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (!opts_.snapshot_dir.empty() && opts_.snapshot_interval_s > 0) {
    autosaver_ = std::thread([this] { autosave_loop(); });
  }
}

RoutingService::~RoutingService() {
  // The autosaver submits into the queue; stop it before admission closes.
  if (autosaver_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(autosave_mu_);
      autosave_stop_ = true;
    }
    autosave_cv_.notify_all();
    autosaver_.join();
  }
  queue_.close();
  for (std::thread& t : workers_) t.join();
  // Workers have drained the queue: every accepted job's callback has fired.
}

std::shared_ptr<const LayoutSession> RoutingService::load(
    const std::string& text, bool* cache_hit) {
  return cache_.load(text, cache_hit);
}

std::future<RouteResponse> RoutingService::submit(RouteRequest req) {
  auto p = std::make_shared<std::promise<RouteResponse>>();
  std::future<RouteResponse> fut = p->get_future();
  submit(std::move(req),
         [p](RouteResponse resp) { p->set_value(std::move(resp)); });
  return fut;
}

void RoutingService::submit(RouteRequest req, RouteCallback done) {
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();

  const auto fail_now = [&](RouteStatus status, std::string error = {}) {
    RouteResponse resp;
    resp.status = status;
    resp.error = std::move(error);
    done(std::move(resp));
  };

  // Resolve the session at admission: an unknown handle must fail fast, not
  // burn a queue slot and a worker wake-up.
  std::shared_ptr<const LayoutSession> session = cache_.find(req.session_key);
  if (session == nullptr) {
    metrics_.requests_not_found.fetch_add(1, std::memory_order_relaxed);
    return fail_now(RouteStatus::kSessionNotFound);
  }

  // Resolve a net-name list against the session while we still can answer
  // with a precise diagnostic; by worker time the client context is gone.
  // ROUTE lists become a subset restriction, REROUTE lists the rip-up set.
  if (!req.net_names.empty()) {
    std::vector<std::size_t> indices;
    indices.reserve(req.net_names.size());
    std::vector<bool> taken(session->layout.nets().size(), false);
    for (const std::string& name : req.net_names) {
      const auto it = session->net_index.find(name);
      if (it == session->net_index.end()) {
        metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
        return fail_now(RouteStatus::kError, "unknown net '" + name + "'");
      }
      if (taken[it->second]) continue;  // duplicate name: route once
      taken[it->second] = true;
      indices.push_back(it->second);
    }
    if (req.reroute) {
      req.opts.reroute = std::move(indices);
      req.opts.subset.clear();
    } else {
      req.opts.subset = std::move(indices);
    }
  }

  Job job;
  job.req = std::move(req);
  job.session = std::move(session);
  job.done = std::move(done);
  job.submitted = now;
  job.id = trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  job.verb = classify_verb(job.req);
  if (job.req.received != std::chrono::steady_clock::time_point{} &&
      job.req.received <= now) {
    job.trace.parse_us = micros_between(job.req.received, now);
  }
  // Admission work (session resolve, net-name resolution) is the span
  // between the origin and here; the queue span starts at this stamp.
  job.trace.enqueue_us =
      micros_between(now, std::chrono::steady_clock::now());
  // Shard by session: fair dispatch is per layout, so one session's burst
  // queues behind itself instead of in front of everyone else.  The key is
  // copied out before the push — try_push moves the job (and the string
  // the key aliases) on success.
  const std::string shard = job.req.session_key;
  if (!queue_.try_push(shard, std::move(job))) {
    // try_push moves only on success, so the rejected job still owns its
    // callback and can deliver the rejection.
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    RouteResponse resp;
    resp.status = RouteStatus::kRejected;
    job.done(std::move(resp));
  }
}

RouteResponse RoutingService::route(RouteRequest req) {
  return submit(std::move(req)).get();
}

void RoutingService::submit_pin(PinRequest req, PinCallback done) {
  const auto now = std::chrono::steady_clock::now();
  const auto fail_now = [&](RouteStatus status, std::string error = {}) {
    metrics_.pin_ops_failed.fetch_add(1, std::memory_order_relaxed);
    PinResponse resp;
    resp.status = status;
    resp.error = std::move(error);
    done(std::move(resp));
  };
  if (req.owner == nullptr) {
    return fail_now(RouteStatus::kError,
                    "pin request without a connection identity");
  }

  std::shared_ptr<PinnedSession> pin = pins_.find(req.key);
  if (pin == nullptr && req.op == PinRequest::Op::kPin) {
    // Derive from a cached session.  The expensive copy-on-pin runs on a
    // worker; no ticket — the pin does not exist yet, so nothing to order
    // against (and the client cannot address it before the reply names
    // the handle).
    std::shared_ptr<const LayoutSession> session = cache_.find(req.key);
    if (session == nullptr) return fail_now(RouteStatus::kSessionNotFound);
    Job job;
    job.kind = Job::Kind::kPin;
    job.verb = VerbKind::kPin;
    job.id = trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
    job.pin_req = std::move(req);
    job.session = std::move(session);
    job.pin_done = std::move(done);
    job.submitted = now;
    job.trace.enqueue_us =
        micros_between(now, std::chrono::steady_clock::now());
    // Derive shards under the *base session* key: the handle does not
    // exist yet, and the copy-on-pin competes with that session's routes.
    const std::string shard = job.pin_req.key;
    if (!queue_.try_push(shard, std::move(job))) {
      metrics_.pin_ops_failed.fetch_add(1, std::memory_order_relaxed);
      PinResponse resp;
      resp.status = RouteStatus::kRejected;
      job.pin_done(std::move(resp));
    }
    return;
  }
  if (pin == nullptr) {
    return fail_now(RouteStatus::kSessionNotFound,
                    "no pin '" + req.key + "'");
  }
  // Advisory ownership pre-check (claims excepted — claiming an unowned
  // pin is the point; system sweeps too — the autosaver snapshots pins it
  // does not own); re-checked authoritatively on the worker once this
  // op's turn comes up.
  if (req.op != PinRequest::Op::kPin && !req.system &&
      !pins_.verify(pin, req.owner)) {
    return fail_now(RouteStatus::kError, "pin '" + req.key +
                                             "' is owned by another "
                                             "connection");
  }
  Job job;
  job.kind = Job::Kind::kPin;
  job.verb = VerbKind::kPin;
  job.id = trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  job.pin = std::move(pin);
  job.pin_ticket = job.pin->acquire_ticket();
  job.pin_req = std::move(req);
  job.pin_done = std::move(done);
  job.submitted = now;
  job.trace.enqueue_us =
      micros_between(now, std::chrono::steady_clock::now());
  // Mutations shard by handle: the pin's FIFO ticket chain and its queue
  // shard agree on order, and a busy pin cannot starve other sessions.
  const std::string shard = job.pin->handle;
  if (!queue_.try_push(shard, std::move(job))) {
    metrics_.pin_ops_failed.fetch_add(1, std::memory_order_relaxed);
    job.pin->abort_turn(job.pin_ticket);
    PinResponse resp;
    resp.status = RouteStatus::kRejected;
    job.pin_done(std::move(resp));
  }
}

PinResponse RoutingService::pin_op(PinRequest req) {
  auto p = std::make_shared<std::promise<PinResponse>>();
  std::future<PinResponse> fut = p->get_future();
  submit_pin(std::move(req),
             [p](PinResponse resp) { p->set_value(std::move(resp)); });
  return fut.get();
}

void RoutingService::release_pins(
    const std::shared_ptr<std::atomic<bool>>& owner, bool preserve) {
  const std::size_t released = pins_.release_owner(owner, preserve);
  if (released > 0) {
    metrics_.pins_released.fetch_add(released, std::memory_order_relaxed);
  }
}

std::size_t RoutingService::final_save_pins() {
  if (opts_.snapshot_dir.empty()) return 0;
  std::size_t written = 0;
  for (const auto& pin : pins_.all()) {
    // Ride the ticket chain: a mutation still running on a worker (or
    // queued ahead by a force-closed connection) holds an earlier ticket,
    // so wait_turn is the per-pin quiesce barrier — the snapshot always
    // serializes a committed state, never a half-applied op.
    const std::uint64_t ticket = pin->acquire_ticket();
    pin->wait_turn(ticket);
    PinResponse resp;
    save_pin(*pin, pin->handle, resp);
    pin->finish_turn(ticket);
    if (resp.ok()) {
      ++written;
      metrics_.pin_autosaves.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::cerr << "gcr_serve: final save of '" << pin->handle
                << "' failed: " << resp.error << "\n";
    }
  }
  return written;
}

void RoutingService::autosave_loop() {
  const auto interval = std::chrono::seconds(opts_.snapshot_interval_s);
  std::unique_lock<std::mutex> lock(autosave_mu_);
  for (;;) {
    if (autosave_cv_.wait_for(lock, interval,
                              [&] { return autosave_stop_; })) {
      return;
    }
    lock.unlock();
    // Hot pins persist continuously: each registered pin gets a system
    // SAVE job that rides its ticket chain like any client mutation, so
    // the snapshot lands between ops, in submission order, without ever
    // claiming the pin away from its owner.
    for (const auto& pin : pins_.all()) {
      PinRequest req;
      req.op = PinRequest::Op::kSave;
      req.key = pin->handle;
      req.save_name = pin->handle;
      req.owner = system_owner_;
      req.system = true;
      submit_pin(std::move(req), [this](PinResponse resp) {
        if (resp.ok()) {
          metrics_.pin_autosaves.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    lock.lock();
  }
}

void RoutingService::submit_load(std::string text, std::string key,
                                 std::shared_ptr<std::atomic<bool>> cancel,
                                 LoadCallback done) {
  metrics_.loads_offloaded.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kLoad;
  job.verb = VerbKind::kLoad;
  job.id = trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  job.load_text = std::move(text);
  job.load_key = std::move(key);
  job.load_cancel = std::move(cancel);
  job.load_done = std::move(done);
  job.submitted = std::chrono::steady_clock::now();
  // The load key IS the session content key, so a cold LOAD queues in the
  // same shard as that session's routes — fair against other sessions,
  // ordered within its own.
  const std::string shard = job.load_key;
  if (!queue_.try_push(shard, std::move(job))) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
    LoadResponse resp;
    resp.error = "rejected";
    job.load_done(std::move(resp));
  }
}

void RoutingService::submit_gen(std::function<std::string()> synth,
                                std::shared_ptr<std::atomic<bool>> cancel,
                                LoadCallback done) {
  metrics_.loads_offloaded.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kLoad;
  job.verb = VerbKind::kGen;
  job.id = trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  job.load_synth = std::move(synth);
  job.load_cancel = std::move(cancel);
  job.load_done = std::move(done);
  job.submitted = std::chrono::steady_clock::now();
  // All GENs share one shard: synthesis has no session identity yet, and
  // pooling them keeps a generation storm to one DRR turn per round.
  const std::string shard = "gen";
  if (!queue_.try_push(shard, std::move(job))) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
    LoadResponse resp;
    resp.error = "rejected";
    job.load_done(std::move(resp));
  }
}

void RoutingService::run_load_job(Job& job) {
  // Deliberately not recorded into the *global* latency/queue-wait
  // histograms: those are what STATS reports as routing percentiles, and
  // one cold environment build would distort p95/p99 for every dashboard
  // reading them.  LOAD/GEN latency lives in its own verb shard (and in
  // the slow-request ring) instead.
  job.trace.dequeue_us =
      micros_between(job.submitted, std::chrono::steady_clock::now());
  LoadResponse resp;
  if (job.load_cancel &&
      job.load_cancel->load(std::memory_order_relaxed)) {
    resp.error = "cancelled";  // peer gone: skip the expensive build
  } else {
    try {
      if (job.load_synth) {
        // GEN: synthesize here, then load by content — the worker hashes
        // the body it just produced (no admission-time probe existed).
        resp.session = cache_.load(job.load_synth(), &resp.cache_hit);
      } else {
        resp.session = cache_.load(job.load_text, std::move(job.load_key),
                                   &resp.cache_hit);
      }
      resp.ok = true;
      metrics_.loads_ok.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      resp.error = e.what();
    }
  }
  if (!resp.ok) {
    metrics_.loads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  RequestTrace& trace = job.trace;
  const std::uint64_t total =
      micros_between(job.submitted, std::chrono::steady_clock::now());
  trace.exec_us = total;
  if (trace.env_us < trace.dequeue_us) trace.env_us = trace.dequeue_us;
  trace.total_us = total;
  metrics_.verb_latency[static_cast<std::size_t>(job.verb)].record(total);
  SlowRecord rec;
  rec.id = job.id;
  rec.verb = job.verb;
  rec.session = resp.session != nullptr ? resp.session->key : job.load_key;
  rec.status = resp.ok ? "ok" : "error";
  rec.trace = std::move(trace);
  slow_ring_.offer(std::move(rec));
  job.load_done(std::move(resp));
}

void RoutingService::worker_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;  // closed and drained

    if (job->kind == Job::Kind::kLoad) {
      run_load_job(*job);
      continue;
    }
    if (job->kind == Job::Kind::kPin) {
      run_pin_job(*job);
      continue;
    }

    const auto dequeued = std::chrono::steady_clock::now();
    job->trace.dequeue_us = micros_between(job->submitted, dequeued);
    RouteResponse resp;
    resp.queue_wait = std::chrono::microseconds(
        micros_between(job->submitted, dequeued));
    metrics_.queue_wait.record(
        static_cast<std::uint64_t>(resp.queue_wait.count()));

    if (job->req.cancel && job->req.cancel->load(std::memory_order_relaxed)) {
      resp.status = RouteStatus::kCancelled;
      metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
      finish(*job, std::move(resp));
      continue;
    }
    if (job->req.deadline != std::chrono::steady_clock::time_point{} &&
        dequeued > job->req.deadline) {
      resp.status = RouteStatus::kExpired;
      metrics_.requests_expired.fetch_add(1, std::memory_order_relaxed);
      finish(*job, std::move(resp));
      continue;
    }

    if (job->req.stage.has_value()) {
      run_stage_job(*job, resp);
      finish(*job, std::move(resp));
      continue;
    }

    try {
      // The session's environment is injected, so this call performs no
      // ObstacleIndex / EscapeLineSet construction — the cache already paid
      // for both.  That holds for *sequential* mode too: the router copies
      // the shared environment and absorbs routed nets with incremental
      // commit_route updates instead of per-net rebuilds.
      if (job->req.optimize) {
        route::OptimizeOptions oopts;
        oopts.steiner = job->req.opts.steiner;
        oopts.wire_halo = job->req.opts.wire_halo;
        if (job->req.optimize_passes > 0) {
          oopts.max_passes = job->req.optimize_passes;
        }
        oopts.budget = job->req.optimize_budget;
        oopts.deadline = job->req.deadline;
        oopts.cancel = job->req.cancel;
        // Per-pass sub-spans: wrap the caller's progress hook so every
        // completed pass leaves a trace stamp (same origin as the spans).
        {
          const route::OptimizeProgress user = job->req.progress;
          RequestTrace* trace = &job->trace;
          const auto origin = job->submitted;
          oopts.progress = [user, trace,
                            origin](const route::OptimizePassStats& p) {
            trace->subs.push_back(
                {"pass" + std::to_string(p.pass),
                 micros_between(origin, std::chrono::steady_clock::now())});
            if (user) user(p);
          };
        }
        const route::Optimizer optimizer(job->session->layout,
                                         job->session->env);
        job->trace.env_us =
            micros_between(job->submitted, std::chrono::steady_clock::now());
        route::OptimizeReport report = optimizer.run(oopts);
        job->trace.exec_us =
            micros_between(job->submitted, std::chrono::steady_clock::now());
        if (report.cancelled) {
          // The client vanished mid-run (pass-boundary check): nothing
          // wants the result.  PASS lines already streamed are fine — the
          // peer that would have read them is gone.
          resp.status = RouteStatus::kCancelled;
          metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
          finish(*job, std::move(resp));
          continue;
        }
        resp.result = std::move(report.result);
        resp.passes = std::move(report.passes);
        metrics_.optimizes_ok.fetch_add(1, std::memory_order_relaxed);
        metrics_.optimize_passes.fetch_add(
            resp.passes.empty() ? 0 : resp.passes.size() - 1,
            std::memory_order_relaxed);
      } else {
        const route::NetlistRouter router(job->session->layout,
                                          job->session->env);
        job->req.opts.deadline = job->req.deadline;
        job->req.opts.cancel = job->req.cancel;
        job->trace.env_us =
            micros_between(job->submitted, std::chrono::steady_clock::now());
        resp.result = router.route_all(job->req.opts);
        job->trace.exec_us =
            micros_between(job->submitted, std::chrono::steady_clock::now());
        if (resp.result.cancelled) {
          // Stopped between nets: the partial result must not be dumped,
          // committed, or counted.  Attribute like the dequeue checks do.
          const bool was_cancel =
              job->req.cancel &&
              job->req.cancel->load(std::memory_order_relaxed);
          resp.result = {};
          resp.status =
              was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
          (was_cancel ? metrics_.requests_cancelled
                      : metrics_.requests_expired)
              .fetch_add(1, std::memory_order_relaxed);
          finish(*job, std::move(resp));
          continue;
        }
      }
      resp.session = job->session;
      // The dump restriction: the subset that was routed, or — for a
      // rip-up — the nets that were re-routed (the rest of the netlist was
      // only the committed backdrop).
      resp.nets = job->req.reroute ? job->req.opts.reroute
                                   : job->req.opts.subset;
      // Publish full-netlist results (ROUTE of everything, REROUTE — whose
      // result carries the whole netlist around the rip-up set — and
      // OPTIMIZE) as the session's committed routes.  The fingerprint in
      // the snapshot re-keys the stage cache, so a mutated routing
      // invalidates cached stage results while a byte-identical re-commit
      // keeps them hot.  Subset ROUTEs never commit: their result holds
      // only the requested nets.
      if (job->req.optimize || job->req.reroute ||
          job->req.opts.subset.empty()) {
        job->session->routes.set(resp.result);
      }
      resp.status = RouteStatus::kOk;
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      metrics_.nets_routed.fetch_add(resp.result.routed,
                                     std::memory_order_relaxed);
      metrics_.nets_failed.fetch_add(resp.result.failed,
                                     std::memory_order_relaxed);
    } catch (const std::exception& e) {
      resp.status = RouteStatus::kError;
      resp.error = e.what();
      metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
    }
    finish(*job, std::move(resp));
  }
}

void RoutingService::run_pin_job(Job& job) {
  const auto dequeued = std::chrono::steady_clock::now();
  job.trace.dequeue_us = micros_between(job.submitted, dequeued);
  PinResponse resp;
  resp.queue_wait =
      std::chrono::microseconds(micros_between(job.submitted, dequeued));
  metrics_.queue_wait.record(
      static_cast<std::uint64_t>(resp.queue_wait.count()));

  if (job.pin == nullptr) {
    // Derive: copy-on-pin of the cached environment.  The layout is shared
    // with the base session via an aliasing pointer — the read-only entry
    // is untouched and stays cached.
    try {
      std::shared_ptr<const layout::Layout> layout(job.session,
                                                   &job.session->layout);
      std::shared_ptr<PinnedSession> pin = pins_.create(
          job.session->key, std::move(layout), job.session->env,
          job.pin_req.owner);
      resp.status = RouteStatus::kOk;
      resp.handle = pin->handle;
      resp.base_key = pin->base_key;
      resp.nets_total = pin->layout->nets().size();
      resp.committed = 0;
      metrics_.pins_created.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      resp.status = RouteStatus::kError;
      resp.error = e.what();
    }
    job.trace.exec_us =
        micros_between(job.submitted, std::chrono::steady_clock::now());
    finish_pin(job, std::move(resp));
    return;
  }

  PinnedSession& pin = *job.pin;
  pin.wait_turn(job.pin_ticket);
  resp.handle = pin.handle;
  resp.base_key = pin.base_key;
  if (job.pin_req.op == PinRequest::Op::kPin) {
    // Claim (an existing handle — restored-unowned or idempotent re-claim).
    // Resolved here rather than at admission so a pipelined claim observes
    // the pin's state in submission order.
    switch (pins_.claim(pin.handle, job.pin_req.owner, nullptr)) {
      case PinRegistry::ClaimResult::kOk:
        resp.status = RouteStatus::kOk;
        resp.nets_total = pin.layout->nets().size();
        resp.committed = pin.routes.size();
        break;
      case PinRegistry::ClaimResult::kNotFound:
        resp.status = RouteStatus::kCancelled;
        resp.error = "pin released";
        break;
      case PinRegistry::ClaimResult::kOwnedElsewhere:
        resp.status = RouteStatus::kError;
        resp.error = "pin '" + pin.handle + "' is owned by another connection";
        break;
    }
  } else if (job.pin_req.system ? pins_.find(job.pin->handle) != job.pin
                                : !pins_.verify(job.pin, job.pin_req.owner)) {
    // The pin was released (disconnect or UNPIN racing ahead in another
    // claim cycle) between admission and this turn.  System sweeps skip the
    // ownership half of the check — the autosaver saves pins it does not
    // own — but still bail if the pin left the registry.
    resp.status = RouteStatus::kCancelled;
    resp.error = "pin released";
  } else if (job.pin_req.op == PinRequest::Op::kUnpin) {
    if (pins_.erase(pin.handle, job.pin_req.owner)) {
      resp.status = RouteStatus::kOk;
      metrics_.pins_released.fetch_add(1, std::memory_order_relaxed);
    } else {
      resp.status = RouteStatus::kCancelled;
      resp.error = "pin released";
    }
  } else {
    run_pin_mutation(job, resp);
  }
  pin.finish_turn(job.pin_ticket);
  job.trace.exec_us =
      micros_between(job.submitted, std::chrono::steady_clock::now());
  finish_pin(job, std::move(resp));
}

void RoutingService::run_pin_mutation(Job& job, PinResponse& resp) {
  PinnedSession& pin = *job.pin;
  const PinRequest& req = job.pin_req;
  try {
    if (req.op == PinRequest::Op::kSave) {
      save_pin(pin, req.save_name, resp);
      return;
    }

    // Resolve names first: any unknown name fails the whole op before a
    // single mutation lands (atomic at the op level).
    std::vector<std::size_t> ids;
    ids.reserve(req.nets.size());
    std::vector<bool> taken(pin.layout->nets().size(), false);
    for (const std::string& name : req.nets) {
      const auto it = pin.net_index.find(name);
      if (it == pin.net_index.end()) {
        resp.status = RouteStatus::kError;
        resp.error = "unknown net '" + name + "'";
        return;
      }
      if (taken[it->second]) continue;  // duplicate name: once
      taken[it->second] = true;
      ids.push_back(it->second);
    }
    resp.nets_total = ids.size();

    if (req.op == PinRequest::Op::kCommit) {
      for (const std::size_t id : ids) {
        if (pin.routes.count(id) != 0) {
          resp.status = RouteStatus::kError;
          resp.error = "net '" + pin.layout->nets()[id].name() +
                       "' is already committed";
          return;
        }
      }
    } else if (req.op == PinRequest::Op::kUncommit) {
      for (const std::size_t id : ids) {
        if (pin.routes.count(id) == 0) {
          resp.status = RouteStatus::kError;
          resp.error =
              "net '" + pin.layout->nets()[id].name() + "' is not committed";
          return;
        }
      }
    }

    if (req.op == PinRequest::Op::kUncommit) {
      for (const std::size_t id : ids) {
        pin.env.remove_route(id);
        pin.routes.erase(id);
      }
      resp.removed = ids.size();
      resp.committed = pin.routes.size();
      resp.status = RouteStatus::kOk;
      return;
    }

    if (req.op == PinRequest::Op::kReroute) {
      // Rip up the listed nets that are present; absent ones just route.
      for (const std::size_t id : ids) {
        if (pin.routes.count(id) != 0) {
          pin.env.remove_route(id);
          pin.routes.erase(id);
        }
      }
    }

    // Route and commit incrementally, in list order.  The router reads the
    // pin's own index/lines, so each commit is visible to the next net —
    // no environment construction anywhere on this path.
    const route::SteinerNetRouter router(pin.env.index(), pin.env.lines());
    const route::SteinerOptions sopts;
    for (const std::size_t id : ids) {
      route::NetRoute r =
          router.route_net(*pin.layout, pin.layout->nets()[id], sopts);
      if (r.ok) {
        pin.env.commit_route(id, r.segments, req.wire_halo);
        ++resp.routed;
        resp.wirelength += r.wirelength;
      } else {
        ++resp.failed;
      }
      pin.routes[id] = std::move(r);
    }

    // Dump only the nets this op touched.
    route::NetlistResult nr;
    nr.routes.resize(pin.layout->nets().size());
    for (const std::size_t id : ids) nr.routes[id] = pin.routes[id];
    resp.body = io::write_routes_string(*pin.layout, nr, ids);
    resp.committed = pin.routes.size();
    resp.status = RouteStatus::kOk;
  } catch (const std::exception& e) {
    resp.status = RouteStatus::kError;
    resp.error = e.what();
  }
}

void RoutingService::save_pin(const PinnedSession& pin,
                              const std::string& name, PinResponse& resp) {
  if (opts_.snapshot_dir.empty()) {
    resp.status = RouteStatus::kError;
    resp.error = "snapshots are disabled (start with --snapshot-dir)";
    return;
  }
  if (name.empty() || name.front() == '.' ||
      name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos) {
    resp.status = RouteStatus::kError;
    resp.error = "SAVE name must be a plain file name";
    return;
  }

  // Encode the compacted live view: tombstones vanish, survivors are
  // renumbered densely, and the line set / commit records follow the remap.
  PinSnapshot snap;
  snap.handle = pin.handle;
  snap.base_key = pin.base_key;
  snap.layout_text = io::write_layout_string(*pin.layout);
  const spatial::ObstacleIndex& index = pin.env.index();
  const std::vector<spatial::EscapeLine>& lines = pin.env.lines().lines();
  if (lines.size() != 4 + 4 * index.size()) {
    resp.status = RouteStatus::kError;
    resp.error = "snapshot: line table out of step with the index";
    return;
  }
  snap.boundary = index.boundary();
  snap.base_obstacles = index.live_size() - pin.env.committed();
  std::vector<std::size_t> remap(index.size(), spatial::ObstacleIndex::npos);
  snap.obstacles.reserve(index.live_size());
  snap.lines.reserve(4 + 4 * index.live_size());
  for (std::size_t k = 0; k < 4; ++k) {
    spatial::EscapeLine l = lines[k];
    l.dead = false;
    snap.lines.push_back(l);
  }
  for (std::size_t i = 0; i < index.size(); ++i) {
    if (!index.alive(i)) continue;
    remap[i] = snap.obstacles.size();
    snap.obstacles.push_back(index.obstacles()[i]);
    for (std::size_t k = 0; k < 4; ++k) {
      spatial::EscapeLine l = lines[4 + 4 * i + k];
      l.source = remap[i];
      l.dead = false;
      snap.lines.push_back(l);
    }
  }
  for (const auto& [net, record] : pin.env.committed_records()) {
    std::vector<std::size_t> renumbered;
    renumbered.reserve(record.size());
    for (const std::size_t slot : record) {
      if (slot >= remap.size() || remap[slot] == spatial::ObstacleIndex::npos) {
        resp.status = RouteStatus::kError;
        resp.error = "snapshot: commit record references a dead obstacle";
        return;
      }
      renumbered.push_back(remap[slot]);
    }
    snap.committed.emplace(net, std::move(renumbered));
  }
  snap.routes = pin.routes;

  const std::string blob = encode_snapshot(snap);
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir(opts_.snapshot_dir);
  fs::create_directories(dir, ec);  // best effort; the open below reports
  const fs::path tmp = dir / (name + ".tmp");
  const fs::path final_path = dir / name;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      resp.status = RouteStatus::kError;
      resp.error = "cannot write snapshot file '" + tmp.string() + "'";
      return;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      resp.status = RouteStatus::kError;
      resp.error = "short write to snapshot file '" + tmp.string() + "'";
      return;
    }
  }
  // Atomic publish: a crash mid-write leaves only the .tmp, which restore
  // skips (bad magic / truncation), never a half-visible snapshot.
  fs::rename(tmp, final_path, ec);
  if (ec) {
    resp.status = RouteStatus::kError;
    resp.error = "cannot publish snapshot file: " + ec.message();
    return;
  }
  resp.save_bytes = blob.size();
  resp.status = RouteStatus::kOk;
  metrics_.pin_saves.fetch_add(1, std::memory_order_relaxed);
}

void RoutingService::restore_pins(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    std::cerr << "gcr_serve: cannot read restore dir '" << dir
              << "': " << ec.message() << "\n";
    return;
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string path = entry.path().string();
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) throw std::runtime_error("cannot open");
      const std::string blob((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
      PinSnapshot snap = decode_snapshot(blob);

      layout::Layout lay = io::read_layout_string(snap.layout_text);
      const std::size_t n_nets = lay.nets().size();
      for (const auto& [net, record] : snap.committed) {
        if (net >= n_nets) {
          throw std::runtime_error("snapshot: commit record for unknown net");
        }
      }
      for (const auto& [net, r] : snap.routes) {
        if (net >= n_nets) {
          throw std::runtime_error("snapshot: route record for unknown net");
        }
      }

      // Rebuild *lookup tables only* from the serialized live state: the
      // ObstacleIndex ctor sorts/buckets the given rects and the line set
      // re-sorts the given lines — no tracing, no environment build (the
      // build counter stays untouched; tests assert it).
      spatial::ObstacleIndex index(snap.boundary, snap.obstacles);
      spatial::EscapeLineSet lines =
          spatial::EscapeLineSet::restore(std::move(snap.lines));
      route::SearchEnvironment env = route::SearchEnvironment::restore(
          std::move(index), std::move(lines), snap.base_obstacles,
          std::move(snap.committed));

      auto pin = std::make_shared<PinnedSession>(
          std::move(snap.handle), std::move(snap.base_key),
          std::make_shared<const layout::Layout>(std::move(lay)),
          std::move(env));
      pin->routes = std::move(snap.routes);
      if (pins_.adopt(std::move(pin))) {
        metrics_.pins_restored.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::cerr << "gcr_serve: skipping snapshot '" << path
                  << "': duplicate handle\n";
      }
    } catch (const std::exception& e) {
      // Invalid-on-partial-read: the pin was never registered, so a corrupt
      // file leaves the session absent rather than half-restored.
      std::cerr << "gcr_serve: skipping snapshot '" << path
                << "': " << e.what() << "\n";
    }
  }
}

void RoutingService::finish_pin(Job& job, PinResponse&& resp) {
  const std::uint64_t total =
      micros_between(job.submitted, std::chrono::steady_clock::now());
  resp.latency = std::chrono::microseconds(total);
  RequestTrace& trace = job.trace;
  if (trace.dequeue_us < trace.enqueue_us) trace.dequeue_us = trace.enqueue_us;
  if (trace.env_us < trace.dequeue_us) trace.env_us = trace.dequeue_us;
  if (trace.exec_us < trace.env_us) trace.exec_us = trace.env_us;
  trace.total_us = total;
  metrics_.latency.record(total);
  metrics_.verb_latency[static_cast<std::size_t>(VerbKind::kPin)].record(
      total);
  SlowRecord rec;
  rec.id = job.id;
  rec.verb = VerbKind::kPin;
  rec.session = job.pin_req.key;
  rec.status = to_string(resp.status);
  rec.trace = trace;
  slow_ring_.offer(std::move(rec));
  (resp.ok() ? metrics_.pin_ops_ok : metrics_.pin_ops_failed)
      .fetch_add(1, std::memory_order_relaxed);
  job.pin_done(std::move(resp));
}

void RoutingService::run_stage_job(Job& job, RouteResponse& resp) {
  const pipeline::StageOptions& sopts = *job.req.stage;
  try {
    // The stage consumes the committed routes.  A fresh session has none:
    // run the default full sequential pass once and commit it, so `LOAD;
    // DETAIL` works without an explicit ROUTE — and later stages (and
    // ROUTEs) share that exact snapshot.
    std::shared_ptr<const pipeline::CommittedRoutes> state =
        job.session->routes.get();
    if (state == nullptr) {
      const route::NetlistRouter router(job.session->layout,
                                        job.session->env);
      // The implicit route honors the stage request's deadline and cancel
      // token (checked between nets) — on a large GEN'd session it can
      // dwarf the stage itself.  A stopped route is never committed: the
      // next request starts from a clean no-routes slot.
      route::NetlistOptions ropts;
      ropts.deadline = job.req.deadline;
      ropts.cancel = job.req.cancel;
      route::NetlistResult routed = router.route_all(ropts);
      if (routed.cancelled) {
        const bool was_cancel =
            job.req.cancel &&
            job.req.cancel->load(std::memory_order_relaxed);
        resp.status =
            was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
        (was_cancel ? metrics_.requests_cancelled : metrics_.requests_expired)
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      state = job.session->routes.set(std::move(routed));
    }
    // Committed routes (possibly just materialized above) are this verb's
    // "environment": everything after this stamp is the stage itself.
    job.trace.env_us =
        micros_between(job.submitted, std::chrono::steady_clock::now());

    const std::string key = pipeline::StageCache::key_for(
        job.session->key, state->fingerprint, sopts.fingerprint());
    std::shared_ptr<const pipeline::StageResult> cached =
        stage_cache_.find(key);
    if (cached != nullptr) {
      resp.stage = std::move(cached);
      resp.stage_cached = true;
      job.trace.subs.push_back(
          {"stage_cache_hit",
           micros_between(job.submitted, std::chrono::steady_clock::now())});
    } else {
      const pipeline::StageContext ctx{job.session->layout,
                                       job.session->env, state->result,
                                       job.req.cancel, job.req.deadline};
      pipeline::StageOutcome out = pipeline::run_stage(ctx, sopts);
      if (out.result == nullptr) {
        // Stopped inside the engine: attribute it like the dequeue checks
        // do — cancel token wins, otherwise it was the deadline.
        const bool was_cancel =
            job.req.cancel &&
            job.req.cancel->load(std::memory_order_relaxed);
        resp.status =
            was_cancel ? RouteStatus::kCancelled : RouteStatus::kExpired;
        (was_cancel ? metrics_.requests_cancelled : metrics_.requests_expired)
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stage_cache_.insert(key, out.result);
      resp.stage = std::move(out.result);
      job.trace.subs.push_back(
          {"stage_run",
           micros_between(job.submitted, std::chrono::steady_clock::now())});
    }
    job.trace.exec_us =
        micros_between(job.submitted, std::chrono::steady_clock::now());
    resp.session = job.session;
    resp.status = RouteStatus::kOk;
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    metrics_.stages_ok.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    resp.status = RouteStatus::kError;
    resp.error = e.what();
    metrics_.requests_errored.fetch_add(1, std::memory_order_relaxed);
    metrics_.stages_failed.fetch_add(1, std::memory_order_relaxed);
  }
}

void RoutingService::finish(Job& job, RouteResponse&& resp) {
  // One clock read produces both the reported latency and the trace's
  // total_us — the rendered span deltas sum to total_us exactly.
  const std::uint64_t total =
      micros_between(job.submitted, std::chrono::steady_clock::now());
  resp.latency = std::chrono::microseconds(total);
  RequestTrace& trace = job.trace;
  // Early-out paths (cancel/expiry at dequeue, admission-stage errors) skip
  // some stamps; clamp forward so the chain stays monotone with zero-width
  // spans for the phases that never ran.
  if (trace.dequeue_us < trace.enqueue_us) trace.dequeue_us = trace.enqueue_us;
  if (trace.env_us < trace.dequeue_us) trace.env_us = trace.dequeue_us;
  if (trace.exec_us < trace.env_us) trace.exec_us = trace.env_us;
  trace.total_us = total;
  metrics_.latency.record(total);
  metrics_.verb_latency[static_cast<std::size_t>(job.verb)].record(total);
  SlowRecord rec;
  rec.id = job.id;
  rec.verb = job.verb;
  rec.session = job.req.session_key;
  rec.status = to_string(resp.status);
  rec.trace = trace;
  slow_ring_.offer(std::move(rec));
  resp.trace = std::move(trace);
  resp.traced = job.req.trace;
  job.done(std::move(resp));
}

MetricsSnapshot RoutingService::snapshot() const {
  MetricsSnapshot s;
  s.requests_submitted =
      metrics_.requests_submitted.load(std::memory_order_relaxed);
  s.requests_ok = metrics_.requests_ok.load(std::memory_order_relaxed);
  s.requests_rejected =
      metrics_.requests_rejected.load(std::memory_order_relaxed);
  s.requests_expired =
      metrics_.requests_expired.load(std::memory_order_relaxed);
  s.requests_cancelled =
      metrics_.requests_cancelled.load(std::memory_order_relaxed);
  s.requests_not_found =
      metrics_.requests_not_found.load(std::memory_order_relaxed);
  s.requests_errored =
      metrics_.requests_errored.load(std::memory_order_relaxed);
  s.nets_routed = metrics_.nets_routed.load(std::memory_order_relaxed);
  s.nets_failed = metrics_.nets_failed.load(std::memory_order_relaxed);
  s.loads_offloaded = metrics_.loads_offloaded.load(std::memory_order_relaxed);
  s.loads_ok = metrics_.loads_ok.load(std::memory_order_relaxed);
  s.loads_failed = metrics_.loads_failed.load(std::memory_order_relaxed);
  s.optimizes_ok = metrics_.optimizes_ok.load(std::memory_order_relaxed);
  s.optimize_passes =
      metrics_.optimize_passes.load(std::memory_order_relaxed);
  s.stages_ok = metrics_.stages_ok.load(std::memory_order_relaxed);
  s.stages_failed = metrics_.stages_failed.load(std::memory_order_relaxed);
  s.gens_ok = metrics_.gens_ok.load(std::memory_order_relaxed);
  s.gens_failed = metrics_.gens_failed.load(std::memory_order_relaxed);
  s.pins_created = metrics_.pins_created.load(std::memory_order_relaxed);
  s.pins_released = metrics_.pins_released.load(std::memory_order_relaxed);
  s.pins_restored = metrics_.pins_restored.load(std::memory_order_relaxed);
  s.pin_ops_ok = metrics_.pin_ops_ok.load(std::memory_order_relaxed);
  s.pin_ops_failed = metrics_.pin_ops_failed.load(std::memory_order_relaxed);
  s.pin_saves = metrics_.pin_saves.load(std::memory_order_relaxed);
  s.pin_autosaves = metrics_.pin_autosaves.load(std::memory_order_relaxed);
  s.pins_active = pins_.size();
  s.stage_cache_hits = stage_cache_.hits();
  s.stage_cache_misses = stage_cache_.misses();
  s.stage_cache_evictions = stage_cache_.evictions();
  s.stage_cache_size = stage_cache_.size();
  // One bucket snapshot per histogram serves every quantile query.
  const Histogram::Snapshot lat = metrics_.latency.snapshot();
  s.latency_p50_us = lat.percentile(50);
  s.latency_p95_us = lat.percentile(95);
  s.latency_p99_us = lat.percentile(99);
  s.queue_wait_p50_us = metrics_.queue_wait.snapshot().percentile(50);
  for (std::size_t i = 0; i < kVerbKinds; ++i) {
    const Histogram::Snapshot vs = metrics_.verb_latency[i].snapshot();
    s.verbs[i].count = vs.count;
    s.verbs[i].p50_us = vs.percentile(50);
    s.verbs[i].p95_us = vs.percentile(95);
    s.verbs[i].p99_us = vs.percentile(99);
  }
  s.uptime_s = uptime_s();
  s.protocol_version = kProtocolVersion;
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.queue_shards = queue_.shards();
  s.queue_fair_rounds = queue_.fair_rounds();
  s.queue_oldest_wait_us = queue_.oldest_wait_us();
  for (const auto& sh : queue_.shard_stats()) {
    s.queue_shard_stats.push_back(
        {sh.depth, sh.enqueued, sh.served, sh.head_wait_us});
  }
  s.workers = workers_.size();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_size = cache_.size();
  return s;
}

std::string RoutingService::stats_text() const {
  std::string text = snapshot().to_text();
  std::function<std::string()> extra;
  {
    const std::lock_guard<std::mutex> lock(extra_stats_mu_);
    extra = extra_stats_;
  }
  if (extra) text += extra();
  return text;
}

void RoutingService::set_extra_stats(std::function<std::string()> extra) {
  const std::lock_guard<std::mutex> lock(extra_stats_mu_);
  extra_stats_ = std::move(extra);
}

std::uint64_t RoutingService::uptime_s() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

}  // namespace gcr::serve
