#include "serve/layout_session.hpp"

#include <stdexcept>
#include <utility>

#include "io/text_format.hpp"

namespace gcr::serve {

std::string SessionCache::content_key(const std::string& text) {
  // FNV-1a, 64-bit.  Not cryptographic — the cache key is a handle, not a
  // security boundary; a colliding upload would at worst route against the
  // earlier layout, and the protocol echoes cell/net counts so a client can
  // notice.
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::shared_ptr<const LayoutSession> SessionCache::load(
    const std::string& text, bool* cache_hit) {
  return load(text, content_key(text), cache_hit);
}

std::shared_ptr<const LayoutSession> SessionCache::load(
    const std::string& text, std::string key, bool* cache_hit) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(key);
    if (it != sessions_.end()) {
      ++hits_;
      touch(it->second);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second.session;
    }
    ++misses_;
  }
  if (cache_hit != nullptr) *cache_hit = false;

  // Parse and build outside the lock: an EscapeLineSet build on a large
  // floorplan takes real time, and concurrent ROUTE lookups must not stall
  // behind it.  Two racing loads of the same content may both build; the
  // second insert below defers to the first, so clients always share one
  // session.
  layout::Layout lay = io::read_layout_string(text);
  const auto issues = lay.validate();
  if (!issues.empty()) {
    throw std::runtime_error(
        "invalid layout (" + std::to_string(issues.size()) + " issue" +
        (issues.size() == 1 ? "" : "s") + "; first: " +
        std::string(layout::to_string(issues.front().kind)) + " — " +
        issues.front().detail + ")");
  }
  auto session = std::make_shared<const LayoutSession>(key, std::move(lay));

  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = sessions_.emplace(key, Entry{});
  if (inserted) {
    recency_.push_front(key);
    it->second = Entry{std::move(session), recency_.begin()};
    while (sessions_.size() > capacity_) {
      sessions_.erase(recency_.back());
      recency_.pop_back();
      ++evictions_;
    }
  } else {
    touch(it->second);  // lost a build race: share the first session
  }
  return it->second.session;
}

std::shared_ptr<const LayoutSession> SessionCache::find(
    const std::string& key) {
  // Deliberately not counted in hits_/misses_: every ROUTE admission lands
  // here, and letting lookups into the counters would turn the "cache hit
  // rate" (a LOAD-deduplication metric) into a request counter.
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return nullptr;
  touch(it->second);
  return it->second.session;
}

std::shared_ptr<const LayoutSession> SessionCache::find_content(
    const std::string& text, std::string* key_out) {
  std::string key = content_key(text);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(key);
  if (key_out != nullptr) *key_out = std::move(key);
  if (it == sessions_.end()) return nullptr;  // load() will count the miss
  ++hits_;
  touch(it->second);
  return it->second.session;
}

std::size_t SessionCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::uint64_t SessionCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SessionCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t SessionCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void SessionCache::touch(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.recency);
}

}  // namespace gcr::serve
