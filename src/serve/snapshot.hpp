#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/route_types.hpp"
#include "geometry/geometry.hpp"
#include "spatial/escape_lines.hpp"

/// \file snapshot.hpp
/// Versioned binary serialization of a pinned session — the durability half
/// of the session lifecycle (SAVE / `--restore-dir`).
///
/// A snapshot captures everything a restarted server needs to answer for a
/// pin without re-deriving it: the layout text (round-trip exact), the
/// *compacted* live view of the pin's ObstacleIndex and EscapeLineSet (the
/// expensive traced state — restoring re-derives only lookup tables, never
/// re-traces), the per-net commit records, and the per-net routed results
/// that back the route dumps.  Tombstones are compacted away at encode
/// time, so the blob is the canonical post-compaction state the file-level
/// docs promise.
///
/// Format (all integers little-endian):
///
/// ```text
/// magic    8 bytes  "GCRSNAP\n"
/// version  u32      1
/// size     u64      payload byte count (exactly the remaining bytes)
/// checksum u64      FNV-1a 64 over the payload
/// payload  …        fields in PinSnapshot order; strings are u64 length +
///                   bytes, maps/vectors are u64 count + entries
/// ```
///
/// Decoding is invalid-on-partial-read, mirroring the environment's
/// UpdateGuard contract: any truncation, trailing garbage, checksum
/// mismatch, or structural violation (a non-axis-parallel segment, a line
/// table whose size disagrees with the obstacle count, an out-of-range
/// commit record) throws std::runtime_error and yields *nothing* — the
/// caller registers a pin only after the whole blob decoded, so a corrupt
/// file leaves the session absent, never half-restored.

namespace gcr::serve {

inline constexpr char kSnapshotMagic[8] = {'G', 'C', 'R', 'S',
                                           'N', 'A', 'P', '\n'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// The serializable state of one pinned session.  `routes` entries carry
/// ok/wirelength/segments — exactly what the route dump renders; per-
/// connection search statistics are diagnostics of the original run and
/// are not preserved.
struct PinSnapshot {
  std::string handle;
  std::string base_key;
  std::string layout_text;  ///< io::write_layout_string (round-trip exact)
  std::size_t base_obstacles = 0;
  geom::Rect boundary;
  std::vector<geom::Rect> obstacles;       ///< live, compacted order
  std::vector<spatial::EscapeLine> lines;  ///< 4 + 4 * obstacles.size()
  std::map<std::size_t, std::vector<std::size_t>> committed;
  std::map<std::size_t, route::NetRoute> routes;
};

/// Renders the framed binary blob.
[[nodiscard]] std::string encode_snapshot(const PinSnapshot& snap);

/// Parses and validates a blob.  Throws std::runtime_error on any
/// corruption (see file comment); never returns a partial snapshot.
[[nodiscard]] PinSnapshot decode_snapshot(const std::string& blob);

}  // namespace gcr::serve
