#include "serve/fd_stream.hpp"

#include <cstddef>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>

#include <cerrno>
#define GCR_SERVE_HAVE_POSIX_FD 1
#else
#define GCR_SERVE_HAVE_POSIX_FD 0
#endif

namespace gcr::serve {

#if GCR_SERVE_HAVE_POSIX_FD

namespace {

/// write(2) until done, retrying EINTR.  False on error/closed peer.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

FdStreamBuf::FdStreamBuf(int read_fd, int write_fd)
    : read_fd_(read_fd), write_fd_(write_fd) {
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (read_fd_ < 0) return traits_type::eof();
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(read_fd_, in_buf_.data(), in_buf_.size());
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_buffer() {
  const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
  if (n == 0) return true;
  if (write_fd_ < 0 || !write_all(write_fd_, pbase(), n)) return false;
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

std::streamsize FdStreamBuf::xsputn(const char* s, std::streamsize n) {
  // Large bodies (layout text, route dumps) bypass the buffer: flush what
  // is pending, then write straight through.
  if (n >= static_cast<std::streamsize>(out_buf_.size())) {
    if (!flush_buffer()) return 0;
    return write_all(write_fd_, s, static_cast<std::size_t>(n)) ? n : 0;
  }
  return std::streambuf::xsputn(s, n);
}

#else  // !GCR_SERVE_HAVE_POSIX_FD

FdStreamBuf::FdStreamBuf(int, int) {
  throw std::runtime_error("fd transport requires a POSIX platform");
}
FdStreamBuf::int_type FdStreamBuf::underflow() { return traits_type::eof(); }
FdStreamBuf::int_type FdStreamBuf::overflow(int_type) {
  return traits_type::eof();
}
int FdStreamBuf::sync() { return -1; }
std::streamsize FdStreamBuf::xsputn(const char*, std::streamsize) {
  return 0;
}
bool FdStreamBuf::flush_buffer() { return false; }

#endif  // GCR_SERVE_HAVE_POSIX_FD

}  // namespace gcr::serve
