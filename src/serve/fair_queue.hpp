#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

/// \file fair_queue.hpp
/// The weighted-fair successor to BoundedQueue at the service's admission
/// stage: jobs are keyed (by session, pin handle, or load identity) into
/// per-key shards and dequeued by deficit round-robin, so a session
/// saturating the service with work no longer starves every other session
/// behind it in a single FIFO — each live shard gets `weight` dequeues per
/// ring round regardless of how deep its neighbors are.
///
/// What is preserved from BoundedQueue, because the service's correctness
/// leans on it:
///   - *per-key* FIFO: one shard is one deque, so a pin handle's ticket
///     chain and a session's pipelined commands still dequeue in admission
///     order (global cross-key FIFO is exactly what fairness gives up);
///   - admission semantics: try_push is non-blocking, fails when the
///     global bound is reached or the queue is closed, and moves its
///     argument only on success so a rejected job can still deliver its
///     failure response;
///   - shutdown semantics: close() stops admission, queued jobs drain, and
///     pop() returns nullopt only once closed *and* drained.
///
/// Shards are created on first push and retired when they drain empty, so
/// the map never outgrows the set of keys with work actually queued.
/// Weights persist across retirement in a side table (set_weight is an
/// operator/test knob; the default weight is 1 = plain round-robin).
///
/// Starvation is observable, not just bounded: depth/enqueued/served per
/// live shard, the DRR round count, and the age of the oldest queued item
/// (the worst wait any key is currently suffering) all export into STATS.

namespace gcr::serve {

template <typename T>
class FairQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// A point-in-time view of one live shard, for STATS and tests.
  struct ShardStats {
    std::string key;
    std::size_t depth = 0;        ///< items queued now
    std::uint64_t enqueued = 0;   ///< admitted since the shard went live
    std::uint64_t served = 0;     ///< dequeued since the shard went live
    std::uint32_t weight = 1;
    std::uint64_t head_wait_us = 0;  ///< how long the front item has waited
  };

  explicit FairQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Non-blocking admission into \p key's shard: false when the global
  /// bound is reached or the queue is closed (the caller sheds the
  /// request).  Moves \p v only on success.
  bool try_push(const std::string& key, T&& v) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || total_ >= capacity_) return false;
      auto [it, inserted] = shards_.try_emplace(key);
      Shard& s = it->second;
      if (inserted) {
        const auto w = weights_.find(key);
        s.weight = w == weights_.end() ? 1 : w->second;
      }
      s.items.push_back(Item{std::move(v), Clock::now()});
      ++s.enqueued;
      ++total_;
      if (!s.in_ring) {
        ring_.push_back(it);
        s.in_ring = true;
      }
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; serves the next item by deficit round-robin.
  /// Returns nullopt once the queue is closed *and* drained — the
  /// worker-pool shutdown signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || total_ > 0; });
    if (total_ == 0) return std::nullopt;

    auto it = ring_.front();
    Shard& s = it->second;
    // Classic DRR with a quantum of one job per weight unit: a shard
    // entering service refills its deficit, spends one per dequeue, and
    // rotates to the back of the ring when the deficit runs dry — so a
    // weight-w shard gets w consecutive dequeues per round.
    if (s.deficit == 0) s.deficit = s.weight == 0 ? 1 : s.weight;
    Item item = std::move(s.items.front());
    s.items.pop_front();
    --s.deficit;
    --total_;
    ++s.served;
    if (s.items.empty()) {
      // Drained: retire the shard entirely.  A key that goes quiet costs
      // nothing, and its next burst starts a fresh shard (weight looked
      // up again from the side table).
      ring_.pop_front();
      shards_.erase(it);
    } else if (s.deficit == 0) {
      ring_.pop_front();
      ring_.push_back(it);
      ++rounds_;
    }
    return std::move(item.value);
  }

  /// Stops admission.  Queued jobs still drain; blocked consumers wake and
  /// (once drained) return nullopt.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Sets the DRR weight for \p key (0 is treated as 1).  Applies to the
  /// key's *next* shard activation and persists across retirements.
  void set_weight(const std::string& key, std::uint32_t weight) {
    const std::lock_guard<std::mutex> lock(mu_);
    weights_[key] = weight == 0 ? 1 : weight;
    const auto it = shards_.find(key);
    if (it != shards_.end()) it->second.weight = weight == 0 ? 1 : weight;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Live (non-empty) shard count.
  [[nodiscard]] std::size_t shards() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return shards_.size();
  }

  /// DRR ring rotations completed (a shard exhausting its per-round
  /// deficit and yielding to the next key).
  [[nodiscard]] std::uint64_t fair_rounds() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return rounds_;
  }

  /// Age in microseconds of the oldest item queued anywhere — the worst
  /// wait any key is currently suffering.  0 when empty.  The starvation
  /// gauge: under fair dispatch it stays bounded even when one shard is
  /// saturated.
  [[nodiscard]] std::uint64_t oldest_wait_us() const {
    const std::lock_guard<std::mutex> lock(mu_);
    if (total_ == 0) return 0;
    const auto now = Clock::now();
    std::uint64_t worst = 0;
    for (const auto& [key, s] : shards_) {
      if (s.items.empty()) continue;
      worst = std::max(worst, age_us(s.items.front().enqueued_at, now));
    }
    return worst;
  }

  /// Snapshots every live shard, in ring (service) order.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    std::vector<ShardStats> out;
    out.reserve(ring_.size());
    for (const auto& it : ring_) {
      const Shard& s = it->second;
      ShardStats st;
      st.key = it->first;
      st.depth = s.items.size();
      st.enqueued = s.enqueued;
      st.served = s.served;
      st.weight = s.weight;
      if (!s.items.empty()) {
        st.head_wait_us = age_us(s.items.front().enqueued_at, now);
      }
      out.push_back(std::move(st));
    }
    return out;
  }

 private:
  struct Item {
    T value;
    Clock::time_point enqueued_at;
  };

  struct Shard {
    std::deque<Item> items;
    std::uint32_t weight = 1;
    std::uint32_t deficit = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t served = 0;
    bool in_ring = false;
  };

  using ShardMap = std::map<std::string, Shard>;

  static std::uint64_t age_us(Clock::time_point then, Clock::time_point now) {
    return then >= now
               ? 0
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         now - then)
                         .count());
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  ShardMap shards_;                          ///< live shards only
  std::deque<typename ShardMap::iterator> ring_;  ///< DRR service order
  std::map<std::string, std::uint32_t> weights_;  ///< persists retirement
  std::size_t total_ = 0;
  std::uint64_t rounds_ = 0;
  bool closed_ = false;
};

}  // namespace gcr::serve
