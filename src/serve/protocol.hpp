#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "serve/routing_service.hpp"

/// \file protocol.hpp
/// The framed line protocol of the routing service — grammar version 2.
///
/// Requests (one command line, LF- or CRLF-terminated; LOAD carries a byte-
/// counted body immediately after its line):
///
/// ```text
/// HELLO                          ; protocol version + capability list (the
///                                ;   serialized verb table, one line per
///                                ;   verb; '!' marks a required knob)
/// LOAD <nbytes>                  ; followed by exactly <nbytes> bytes of
///                                ;   io::text_format layout
/// ROUTE <session> [key=value]…   ; options: mode=independent|sequential
///                                ;   threads=N  deadline_ms=N  sorted=0|1
///                                ;   segments=0|1 (Steiner connect-to-
///                                ;   segments; 1 is the paper's scheme)
///                                ;   nets=<name>[,<name>]… routes only the
///                                ;   listed nets against the cached session
/// REROUTE <session> nets=<list>  ; rip-up-and-reroute: a full sequential
///                                ;   pass, then the listed nets are ripped
///                                ;   out (incremental halo removal) and
///                                ;   re-routed last against the committed
///                                ;   remainder.  nets= is required; mode=
///                                ;   is rejected (always sequential);
///                                ;   other ROUTE options apply.  The dump
///                                ;   is restricted to the listed nets.
///                                ;   When <session> names a *pin*, the
///                                ;   rip-up runs against the pin's own
///                                ;   committed remainder instead (owner
///                                ;   only; see PIN below).
/// OPTIMIZE <session> [k=v]…      ; iterated rip-up-and-reroute over the
///                                ;   whole netlist: passes=N caps the
///                                ;   optimization passes, budget_ms=N
///                                ;   bounds wall-clock (expiry returns the
///                                ;   best routing so far, not an error);
///                                ;   deadline_ms= and segments= as ROUTE.
///                                ;   mode=/nets=/threads= are rejected.
/// DETAIL <session> [k=v]…        ; detailed routing over the session's
///                                ;   committed routes: window=N pitch=N
///                                ;   deadline_ms=N.
/// CONGEST <session> [k=v]…       ; two-pass congestion analysis:
///                                ;   penalty=N iterations=N wire_pitch=N
///                                ;   max_gap=N deadline_ms=N.
/// VERIFY <session> [k=v]…        ; route verifier: all_routed=0|1
///                                ;   deadline_ms=N.
/// SVG <session> [k=v]…           ; SVG render: scale=F pins=0|1 names=0|1
///                                ;   deadline_ms=N.
/// GEN <kind> seed=<n> [k=v]…     ; server-side workload synthesis; kinds
///                                ;   floorplan|standard|padring, knobs
///                                ;   cells=N extent=N nets=N pads=N.
/// PIN <session|handle>           ; derive an exclusive *mutable* copy of a
///                                ;   cached session (copy-on-pin; the
///                                ;   shared read-only entry is untouched),
///                                ;   or claim an existing unowned handle
///                                ;   (the rolling-restart reattach path).
///                                ;   The pin is owned by this connection
///                                ;   and auto-released on disconnect.
/// UNPIN <handle>                 ; release the pin (owner only)
/// COMMIT <handle> nets=<list>    ; route the listed nets against the pin's
///                                ;   committed remainder and commit them
///                                ;   incrementally (no rebuild); errors if
///                                ;   a listed net is already committed
/// UNCOMMIT <handle> nets=<list>  ; rip the listed committed nets back out
///                                ;   (incremental halo removal)
/// SAVE <handle> <name>           ; serialize the pin (post-compaction
///                                ;   index + escape lines + commit records
///                                ;   + routes) to <name> under the
///                                ;   server's --snapshot-dir; a server
///                                ;   started with --restore-dir rehydrates
///                                ;   every decodable blob as an unowned
///                                ;   pin, zero environment rebuilds
/// STATS                          ; service metrics
/// TRACE [n=<count>]              ; the slowest requests seen so far (the
///                                ;   slow-request ring): one line per
///                                ;   record, slowest first, up to n (1..256,
///                                ;   default 32).  A server started with
///                                ;   --slow-ms only retains requests at or
///                                ;   above that threshold; without it the
///                                ;   ring keeps the top-N by latency.
/// QUIT                           ; close the connection
/// ```
///
/// ROUTE, REROUTE, OPTIMIZE, and the stage verbs additionally accept
/// `trace=0|1`: with trace=1 the response meta carries the request's span
/// breakdown (see "Span glossary" below).  Spans are *always* measured —
/// the knob only controls whether they are echoed.
///
/// Responses are framed the same way — a status line carrying the body byte
/// count, then the body verbatim:
///
/// ```text
/// OK <nbytes> [meta]…            ; <nbytes> bytes of body follow the LF
/// ERR <reason…>                  ; no body
/// ```
///
/// Every OK meta is a single space-separated `key=value` list rendered by
/// one formatter (MetaBuilder in protocol.cpp) — clients parse one shape
/// for every verb.  The exceptions are fixed by contract: `QUIT` answers
/// the bare literal `OK 0 bye`, `STATS` bodies stay `key value` metric
/// lines, and `PASS` progress lines were already key=value.
///
/// `OPTIMIZE` additionally streams *progress lines* before its final frame
/// — one per completed pass, in pass order:
///
/// ```text
/// PASS <i> wirelength=<w> overflow=<o>
/// ```
///
/// Progress lines carry no body and are always followed by exactly one
/// terminating `OK`/`ERR` frame, so a client reads lines until the status
/// line arrives — within one response the wirelength and overflow values
/// are non-increasing (the engine never lets a pass regress).  On the
/// event-driven front-end the lines still respect pipelined request order:
/// they are sequenced like any response and cannot interleave into an
/// earlier command's reply.
///
/// Reply metas by verb:
///
/// ```text
/// HELLO     OK <n> version=2 verbs=<count> uptime_s=<s>
///                                              ; body = one line per verb
/// LOAD      OK 0 session=<key> cells=<n> nets=<m> cached=<0|1>
/// GEN       LOAD's meta + gen=<kind>
/// ROUTE     OK <n> routed=<r> failed=<f> wirelength=<w> queue_us=<q>
///           total_us=<t>                       ; body = route dump
/// REROUTE   as ROUTE (pin form adds pin=<handle> first)
/// OPTIMIZE  OK <n> passes=<p> routed=<r> failed=<f> wirelength=<w>
///           overflow=<o> queue_us=<q> total_us=<t>
/// DETAIL &c OK <n> stage=<kind> cached=<0|1> <stage meta…> queue_us=<q>
///           total_us=<t>
/// PIN       OK 0 pin=<handle> session=<base-key> nets=<n> committed=<c>
/// UNPIN     OK 0 pin=<handle> released=1
/// COMMIT    OK <n> pin=<handle> committed=<c> routed=<r> failed=<f>
///           wirelength=<w> queue_us=<q> total_us=<t>  ; body = dump of
///           exactly this op's nets
/// UNCOMMIT  OK 0 pin=<handle> removed=<r> committed=<c> queue_us=<q>
///           total_us=<t>
/// SAVE      OK 0 pin=<handle> bytes=<n> queue_us=<q> total_us=<t>
/// TRACE     OK <n> count=<returned> threshold_ms=<t>  ; body = one line
///           per slow-ring record, slowest first:
///           `trace <id> verb=<v> session=<key> status=<s> total_us=<t>
///            queue_us=… env_us=… exec_us=… finish_us=… [sub_<label>_us=…]`
/// ```
///
/// Span glossary (`trace=1` response meta, all microseconds):
///
/// ```text
/// span_parse_us   read-line -> submit (front-end parse; outside total_us)
/// span_admit_us   submit -> enqueued (admission checks, net resolution)
/// span_queue_us   enqueued -> dequeued by a worker
/// span_env_us     dequeue -> routing environment ready (grid/session state)
/// span_exec_us    environment ready -> engine finished
/// span_finish_us  engine finished -> response handed to the completion
/// sub_<label>_us  sub-span offsets from submit: OPTIMIZE emits one
///                 sub_pass<i>_us per completed pass; stage verbs emit
///                 sub_stage_run_us or sub_stage_cache_hit_us
/// ```
///
/// span_admit + span_queue + span_env + span_exec + span_finish == the
/// response's total_us exactly — every stamp is an offset from one
/// submission timestamp and the deltas telescope.
///
/// The stage verbs run against the session's *committed* routes — published
/// by the last full ROUTE, REROUTE, or OPTIMIZE; a session that has none
/// yet gets a default full sequential pass first (committed for every later
/// request).  Stage results are cached content-addressed on (session key,
/// committed-route fingerprint, stage options), so a repeated `DETAIL` is a
/// cache hit and a mutating `REROUTE`/`OPTIMIZE` re-keys — never staleness.
///
/// Byte-counted bodies make the protocol safe over any 8-bit pipe: layout
/// text and route dumps pass through unescaped, and a desynchronized peer
/// fails loudly at the next status line instead of silently misparsing.
///
/// Input hardening: command lines are capped at kMaxCommandLine bytes (a
/// peer that never sends `\n` cannot buffer unbounded memory), and every
/// `ERR` reason is clamped to short printable text before echoing — request
/// bytes are untrusted and may carry terminal escapes or binary garbage.
///
/// The whole request grammar is one declarative table (verb_table() below):
/// each verb row names its positional arity and its `key=value` knobs with
/// types, ranges, and required flags; classify_command, every parse_*
/// function, and the HELLO capability list are all views of that single
/// table, so the two front-ends cannot drift and a new verb is one row plus
/// a handler.  Everything below except serve_connection is a pure function
/// over in-memory buffers, shared verbatim by the legacy blocking loop and
/// the epoll front-end (src/net/): both speak exactly the same bytes.

namespace gcr::serve {

/// Command lines longer than this are rejected with ERR and discarded up to
/// the next LF; framing survives, memory stays bounded.
inline constexpr std::size_t kMaxCommandLine = 4096;
/// LOAD bodies above this are refused (the declared bytes are skipped so
/// the connection stays framed).
inline constexpr std::size_t kMaxLoadBytes = 64ull << 20;
/// Upper bound on `deadline_ms`/`budget_ms` (24 hours).  parse_count
/// accepts anything up to ULLONG_MAX, but milliseconds' rep is signed:
/// constructing it from a huge count narrows to a *negative* duration, and
/// `steady_clock::now() + deadline` can overflow the clock rep outright
/// (signed-overflow UB).  Values above the cap answer ERR instead.
inline constexpr unsigned long long kMaxDeadlineMs = 86'400'000;
/// Wire grammar version announced by HELLO.  v2 = table-driven verbs,
/// uniform key=value response metas, session lifecycle (PIN family).
inline constexpr unsigned kProtocolVersion = 2;

/// The command keywords, classified once for both front-ends.
enum class CommandKind {
  kBlank,    ///< empty / whitespace-only keep-alive line
  kQuit,
  kStats,
  kHello,    ///< version + capability handshake
  kLoad,
  kRoute,
  kReroute,
  kOptimize,
  kDetail,   ///< pipeline stage: detailed routing
  kCongest,  ///< pipeline stage: two-pass congestion analysis
  kVerify,   ///< pipeline stage: route verification
  kSvg,      ///< pipeline stage: SVG render
  kGen,      ///< server-side workload synthesis
  kPin,      ///< derive/claim a mutable pinned session
  kUnpin,    ///< release a pinned session
  kCommit,   ///< route + incrementally commit nets into a pin
  kUncommit, ///< rip committed nets back out of a pin
  kSave,     ///< serialize a pin to the snapshot directory
  kTrace,    ///< dump the slow-request ring
  kUnknown,
};

/// How a knob's value is parsed and validated.  One enum instead of five
/// hand-rolled parsers: the range/error text is derived uniformly from the
/// KnobSpec (see protocol.cpp) so every verb rejects with identical shapes.
enum class KnobType {
  kCount,     ///< non-negative integer, optional [lo, hi] range
  kDuration,  ///< kCount capped at kMaxDeadlineMs
  kBool,      ///< strictly "0" or "1"
  kMode,      ///< "independent" | "sequential"
  kScale,     ///< positive decimal in [0.0625, 64] (SVG)
  kNets,      ///< comma-separated net-name list, no empty items
};

/// One `key=value` knob a verb accepts.
struct KnobSpec {
  const char* key = "";
  KnobType type = KnobType::kCount;
  /// kCount range.  lo==0 renders "at most <hi>", otherwise
  /// "must be <lo>..<hi>"; hi==ULLONG_MAX disables the check.
  unsigned long long lo = 0;
  unsigned long long hi = ~0ull;
  bool required = false;
  /// Doc string for the required-knob error: "<VERB> needs <key>=<doc>".
  const char* missing_doc = "";
  /// Non-null: the knob's *presence* is an error, answered with exactly
  /// this message (REROUTE mode=).
  const char* reject_msg = nullptr;
};

/// One verb row: everything the shared tokenizer/validator needs.
struct VerbSpec {
  const char* name = "";
  CommandKind kind = CommandKind::kUnknown;
  std::size_t min_args = 0;       ///< leading positional words
  const char* args_doc = "";      ///< "<VERB> needs <args_doc>" when short
  std::vector<KnobSpec> knobs;
};

/// The single declarative grammar shared by classify_command, the parse_*
/// wrappers, and format_hello().  Order is the HELLO listing order.
[[nodiscard]] const std::vector<VerbSpec>& verb_table();

struct ClassifiedCommand {
  CommandKind kind = CommandKind::kBlank;
  std::string keyword;  ///< first token (echoed in unknown-command ERRs)
  std::string args;     ///< everything after the keyword (ROUTE arguments)
};

/// Splits a command line into keyword + argument rest and names the
/// command by verb-table lookup.  The single keyword-routing point shared
/// by the blocking loop and the epoll front-end — one table, no drift.
[[nodiscard]] ClassifiedCommand classify_command(const std::string& line);

/// A parsed ROUTE or REROUTE command.
struct RouteCommand {
  std::string session_key;
  route::NetlistOptions opts;
  std::optional<std::chrono::milliseconds> deadline;
  /// `nets=` list (net names, list order preserved); empty = all nets.
  std::vector<std::string> nets;
  /// REROUTE: `nets` is the rip-up set, not a subset restriction.
  bool reroute = false;
  /// OPTIMIZE: run the iterated rip-up engine (passes/budget below apply).
  bool optimize = false;
  /// OPTIMIZE passes= (0 = engine default).
  std::size_t passes = 0;
  /// OPTIMIZE budget_ms= (zero = unbounded).
  std::chrono::milliseconds budget{0};
  /// Stage verbs (DETAIL/CONGEST/VERIFY/SVG): the selected stage + knobs.
  std::optional<pipeline::StageOptions> stage;
  /// `trace=1`: echo the span breakdown in the response meta.
  bool trace = false;
};

/// Parses the ROUTE argument vector (everything after the keyword) through
/// the verb table.  Throws std::runtime_error with token context on
/// unknown or malformed options.
[[nodiscard]] RouteCommand parse_route_command(const std::string& args);

/// Parses a REROUTE argument vector: the ROUTE grammar, except `nets=` is
/// required (an empty rip-up set would silently be a plain route) and
/// `mode=` is rejected — rip-up-and-reroute is sequential by definition.
/// Throws std::runtime_error like parse_route_command.
[[nodiscard]] RouteCommand parse_reroute_command(const std::string& args);

/// Parses an OPTIMIZE argument vector: `passes=<n>` (1..1024),
/// `budget_ms=<n>`, plus ROUTE's `deadline_ms=`/`segments=`.  Everything
/// else — mode=, nets=, threads=, sorted= — is rejected: the engine is
/// sequential whole-netlist by definition.  Throws std::runtime_error like
/// parse_route_command.
[[nodiscard]] RouteCommand parse_optimize_command(const std::string& args);

/// Parses a stage-verb argument vector (everything after DETAIL / CONGEST /
/// VERIFY / SVG): `<session> [key=value]…` with the stage's knobs plus
/// `deadline_ms=`.  \p kind selects the verb row.  Throws
/// std::runtime_error with token context like parse_route_command.
[[nodiscard]] RouteCommand parse_stage_command(pipeline::StageKind kind,
                                               const std::string& args);

/// A parsed GEN command: which generator and its knobs.  Defaults mirror
/// the workload tests' standard shapes.
struct GenCommand {
  enum class Kind { kFloorplan, kStandard, kPadring };
  Kind kind = Kind::kStandard;
  std::uint64_t seed = 0;
  std::size_t cells = 12;
  geom::Coord extent = 512;
  std::size_t nets = 16;        ///< standard/padring net count
  std::size_t pads = 3;         ///< padring pads per side
};

[[nodiscard]] const char* to_string(GenCommand::Kind k) noexcept;

/// Parses `GEN <kind> seed=<n> [cells=][extent=][nets=][pads=]`.  seed= is
/// required (an accidental default would silently alias sessions); the
/// knobs are capped (cells <= 4096, nets <= 65536, extent 64..1048576,
/// pads <= 256) so a hostile GEN cannot make the server synthesize an
/// arbitrarily large layout.  Throws std::runtime_error on violations.
[[nodiscard]] GenCommand parse_gen_command(const std::string& args);

/// Parses a pin-family argument vector (everything after PIN / UNPIN /
/// COMMIT / UNCOMMIT / SAVE) into a service request.  `owner` is left null
/// — the front-end stamps its connection identity before submitting.
/// Throws std::runtime_error with token context like parse_route_command.
[[nodiscard]] PinRequest parse_pin_command(CommandKind kind,
                                           const std::string& args);

/// Runs the selected generator — deterministically (workload/rng.hpp): the
/// same command yields byte-identical text, and therefore the same session
/// key, on every platform and thread count.  Pure; safe on any thread.
[[nodiscard]] std::string generate_workload_text(const GenCommand& cmd);

/// Parses a complete `LOAD <count>` command line and returns the declared
/// body byte count.  Throws std::runtime_error (with token context) when
/// the count is missing, non-numeric, or out of range — the caller must
/// treat that as a lost stream position.  Shared by the blocking loop and
/// the incremental frame parser so both enforce identical framing.
[[nodiscard]] unsigned long long parse_load_count(const std::string& line);

/// Lowers a parsed command into a service request (deadline made absolute,
/// net names handed over for admission-time resolution).
[[nodiscard]] RouteRequest to_request(const RouteCommand& cmd);

/// Renders one `OK` frame: status line (`OK <body.size()> <meta>`) + body.
[[nodiscard]] std::string format_ok(const std::string& meta,
                                    const std::string& body);

/// Renders one `ERR` frame.  The reason is flattened (no embedded newlines
/// can fabricate protocol lines), clamped to printable ASCII, and truncated
/// — it may echo untrusted request bytes.
[[nodiscard]] std::string format_err(const std::string& reason);

/// Renders the HELLO response: `version=<v> verbs=<n> uptime_s=<s>` meta,
/// body one line per verb-table row (`verb <NAME> args=<n>
/// [knobs=<k1,k2!,…>]`, '!' = required).  Pure apart from \p uptime_s,
/// which the caller reads off the service.
[[nodiscard]] std::string format_hello(std::uint64_t uptime_s);

/// Executes LOAD against the service and renders the response frame.
/// Synchronous — the blocking front-end's path; the event loop offloads
/// the build via RoutingService::submit_load and renders with
/// format_load_response instead.
[[nodiscard]] std::string exec_load(RoutingService& service,
                                    const std::string& body);

/// Renders the LOAD OK frame for an already-resolved session (the inline
/// cache-hit fast path of the event loop).
[[nodiscard]] std::string format_load_ok(const LayoutSession& session,
                                         bool cached);

/// Renders a completed offloaded LOAD: the same bytes exec_load would have
/// produced for the same outcome.  Pure — safe on a worker thread.
[[nodiscard]] std::string format_load_response(const LoadResponse& resp);

/// Renders the STATS response frame.  Times its own render and records the
/// cost into the service's `stats` verb shard — the observer observes
/// itself, so a pathological STATS render shows up in STATS.
[[nodiscard]] std::string exec_stats(RoutingService& service);

/// Parses a TRACE argument vector (`[n=<count>]`, 1..256) and returns the
/// requested record count (32 when omitted).  Throws std::runtime_error
/// with token context like parse_route_command.
[[nodiscard]] std::size_t parse_trace_count(const std::string& args);

/// Renders the TRACE response frame: up to \p n slow-ring records, slowest
/// first, one `trace <id> …` line each (see the file comment), with
/// `count=` and `threshold_ms=` meta.
[[nodiscard]] std::string exec_trace(RoutingService& service, std::size_t n);

/// Renders a completed ROUTE response: OK frame with the route-dump body
/// (subset-restricted when the request named nets), or the ERR frame for a
/// failed status.  Pure — safe to call from a worker thread.
[[nodiscard]] std::string format_route_response(const RouteResponse& resp);

/// Renders one OPTIMIZE progress line (`PASS <i> wirelength=<w>
/// overflow=<o>\n`, no body).  Pure — safe on a worker thread.
[[nodiscard]] std::string format_pass_progress(
    const route::OptimizePassStats& stats);

/// Renders a completed OPTIMIZE response: the final OK frame with the
/// full-netlist route-dump body and convergence meta (`passes`, `overflow`
/// on top of ROUTE's meta), or the ERR frame.  Pure — safe on a worker
/// thread.
[[nodiscard]] std::string format_optimize_response(const RouteResponse& resp);

/// Renders a completed stage response: `OK <nbytes> stage=<kind>
/// cached=<0|1> <stage meta> queue_us=<q> total_us=<t>` + the stage body,
/// or the ERR frame.  Pure — safe on a worker thread.
[[nodiscard]] std::string format_stage_response(const RouteResponse& resp);

/// Renders a completed pin-family response (meta per the file comment), or
/// the ERR frame.  \p op selects the meta shape.  Pure — safe on a worker
/// thread.
[[nodiscard]] std::string format_pin_response(const PinResponse& resp,
                                              PinRequest::Op op);

/// Renders the GEN OK frame: LOAD's meta plus a trailing `gen=<kind>`.
[[nodiscard]] std::string format_gen_ok(const LayoutSession& session,
                                        bool cached, GenCommand::Kind kind);

/// Executes GEN synchronously (generate + load + account) — the blocking
/// front-end's path; the event loop generates on its own thread and runs
/// the text through its LOAD machinery instead.
[[nodiscard]] std::string exec_gen(RoutingService& service,
                                   const GenCommand& cmd);

/// Serves one connection: reads command frames from \p in, writes response
/// frames to \p out, until QUIT, end of input, or an unrecoverable framing
/// error (a LOAD whose body ends early).  Malformed *command lines* get an
/// ERR response and the connection continues — one bad request must not
/// take down a pipelined client.  The connection gets a fresh identity
/// token; pins it acquires are released when the loop exits, whatever the
/// exit path.  Returns the number of frames served.
std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out);

}  // namespace gcr::serve
