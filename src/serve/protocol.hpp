#pragma once

#include <chrono>
#include <iosfwd>
#include <optional>
#include <string>

#include "serve/routing_service.hpp"

/// \file protocol.hpp
/// The framed line protocol of the routing service.
///
/// Requests (one command line, LF- or CRLF-terminated; LOAD carries a byte-
/// counted body immediately after its line):
///
/// ```text
/// LOAD <nbytes>                  ; followed by exactly <nbytes> bytes of
///                                ;   io::text_format layout
/// ROUTE <session> [key=value]…   ; options: mode=independent|sequential
///                                ;   threads=N  deadline_ms=N  sorted=0|1
///                                ;   segments=0|1 (Steiner connect-to-
///                                ;   segments; 1 is the paper's scheme)
/// STATS                          ; service metrics
/// QUIT                           ; close the connection
/// ```
///
/// Responses are framed the same way — a status line carrying the body byte
/// count, then the body verbatim:
///
/// ```text
/// OK <nbytes> [meta]…            ; <nbytes> bytes of body follow the LF
/// ERR <reason…>                  ; no body
/// ```
///
/// `LOAD` replies `OK 0 session <key> cells <n> nets <m> cached <0|1>`.
/// `ROUTE` replies `OK <nbytes> routed <r> failed <f> wirelength <w>
/// queue_us <q> total_us <t>` with an io::route_dump body, or `ERR
/// <status>` (session_not_found, rejected, deadline_expired, …).
/// `STATS` replies `OK <nbytes>` with `key value` metric lines.
///
/// Byte-counted bodies make the protocol safe over any 8-bit pipe: layout
/// text and route dumps pass through unescaped, and a desynchronized peer
/// fails loudly at the next status line instead of silently misparsing.

namespace gcr::serve {

/// A parsed ROUTE command.
struct RouteCommand {
  std::string session_key;
  route::NetlistOptions opts;
  std::optional<std::chrono::milliseconds> deadline;
};

/// Parses the ROUTE argument vector (everything after the keyword).
/// Throws std::runtime_error with token context on unknown or malformed
/// options.
[[nodiscard]] RouteCommand parse_route_command(const std::string& args);

/// Writes one `OK` frame: status line (`OK <body.size()> <meta>`) + body.
void write_ok(std::ostream& out, const std::string& meta,
              const std::string& body);
/// Writes one `ERR` frame.
void write_err(std::ostream& out, const std::string& reason);

/// Serves one connection: reads command frames from \p in, writes response
/// frames to \p out, until QUIT, end of input, or an unrecoverable framing
/// error (a LOAD whose body ends early).  Malformed *command lines* get an
/// ERR response and the connection continues — one bad request must not
/// take down a pipelined client.  Returns the number of frames served.
std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out);

}  // namespace gcr::serve
