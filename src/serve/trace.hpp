#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file trace.hpp
/// Request-level observability primitives shared by the service and both
/// front-ends:
///
///  - Histogram: lock-free fixed-bucket log2 latency histogram.  record() is
///    three relaxed atomic adds — no mutex, no allocation — so it can sit on
///    the per-request hot path and be sharded per verb kind.  Percentiles
///    come from a point-in-time snapshot and are resolved to the bucket's
///    inclusive upper bound (one log2 bucket of error by construction).
///
///  - VerbKind: the per-verb shard index for histograms and traces.
///
///  - RequestTrace: monotonic span offsets (microseconds from admission)
///    stamped along a request's life: parse, admission/enqueue, dequeue,
///    env build, execute, finish.  Offsets from one clock origin mean the
///    rendered span deltas sum *exactly* to total_us.  Sub-spans (OPTIMIZE
///    passes, pipeline stage run/cache-hit) ride a small label+offset list.
///
///  - SlowRequestRing: bounded keep-the-worst ring of completed request
///    traces, dumped by the TRACE verb.  A lock-free atomic threshold
///    pre-check keeps the common case (fast request, ring already full of
///    slower ones) off the mutex entirely.

namespace gcr::serve {

/// Power-of-two bucketed histogram over unsigned 64-bit samples
/// (microseconds in practice).  Bucket 0 holds the value 0; bucket k >= 1
/// holds [2^(k-1), 2^k - 1].  65 buckets cover the full u64 range.
///
/// record() is wait-free: three relaxed fetch_adds.  Snapshots are not
/// atomic across buckets — a reader racing a writer can see a sample in
/// count_ but not yet in a bucket (or vice versa); percentile() tolerates
/// that by ranking against the sum of the buckets it actually read.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket for \p v: 0 for 0, otherwise bit_width(v) (so 1 -> bucket 1,
  /// [2,3] -> bucket 2, [4,7] -> bucket 3, ...).
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket \p i — the value percentile queries
  /// resolve to.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t i) noexcept {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Point-in-time copy, cheap to query repeatedly (percentile() does not
  /// re-read the atomics).
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Nearest-rank percentile (\p q in [0,100]) resolved to the matched
    /// bucket's inclusive upper bound; 0 when empty.
    [[nodiscard]] std::uint64_t percentile(double q) const;
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::uint64_t total_recorded() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Shard index for per-verb histograms and slow-request records.  One entry
/// per protocol verb family that reaches the service (pin mutations share
/// kPin; DETAIL/CONGEST/VERIFY/SVG are distinct so a slow SVG render cannot
/// hide inside DETAIL's percentiles).
enum class VerbKind : std::uint8_t {
  kRoute = 0,
  kReroute,
  kOptimize,
  kDetail,
  kCongest,
  kVerify,
  kSvg,
  kLoad,
  kGen,
  kPin,
  kStats,
  kCount_,
};

inline constexpr std::size_t kVerbKinds =
    static_cast<std::size_t>(VerbKind::kCount_);

[[nodiscard]] std::string_view to_string(VerbKind kind) noexcept;

/// Span offsets for one request, all in microseconds from the admission
/// clock read (`Job::submitted`).  Every stamp is monotonic by construction
/// (offsets from one origin, taken in order), and the rendered deltas
///   span_admit + span_queue + span_env + span_exec + span_finish
/// sum exactly to total_us because total_us is stamped from the same final
/// clock read that produces the response's latency.
///
/// parse_us is the one span *before* the origin: receive-to-admission on
/// the front-end (read + parse + classify).  It is rendered separately and
/// excluded from total_us, which — as ever — measures admission to
/// response.
struct RequestTrace {
  std::uint64_t parse_us = 0;    ///< front-end receive -> admission
  std::uint64_t enqueue_us = 0;  ///< admission checks -> queued
  std::uint64_t dequeue_us = 0;  ///< a worker picked the job up
  std::uint64_t env_us = 0;      ///< environment / implicit route ready
  std::uint64_t exec_us = 0;     ///< engine finished
  std::uint64_t total_us = 0;    ///< response finished (== resp.latency)

  /// Labeled sub-span: offset (same origin) at which `label` completed.
  /// OPTIMIZE records one per pass; stage verbs record run vs cache-hit.
  struct Sub {
    std::string label;
    std::uint64_t at_us = 0;
  };
  std::vector<Sub> subs;

  /// ` span_admit_us=.. span_queue_us=.. span_env_us=.. span_exec_us=..
  /// span_finish_us=.. span_parse_us=.. [sub_<label>_us=..]` — leading
  /// space, ready to append to a response meta.
  [[nodiscard]] std::string render_meta() const;
};

/// One completed slow request, as kept by the ring and printed by TRACE.
struct SlowRecord {
  std::uint64_t id = 0;  ///< admission sequence number of the request
  VerbKind verb = VerbKind::kRoute;
  std::string session;  ///< session key or pin handle ("" when none)
  std::string status;   ///< RouteStatus / pin outcome text
  RequestTrace trace;
};

/// Bounded keep-the-worst collection of completed request traces.
///
/// With a nonzero threshold only requests at least that slow are eligible;
/// with threshold 0 the ring keeps the top-`capacity` by total_us.  Either
/// way the common case — a request faster than the current minimum of a
/// full ring — is rejected by one relaxed atomic load before the mutex.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(std::size_t capacity = 32,
                           std::uint64_t threshold_us = 0)
      : capacity_(capacity == 0 ? 1 : capacity), threshold_us_(threshold_us) {}

  void offer(SlowRecord rec);

  /// Up to \p n records, slowest first.
  [[nodiscard]] std::vector<SlowRecord> top(std::size_t n) const;

  [[nodiscard]] std::uint64_t threshold_us() const { return threshold_us_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::uint64_t threshold_us_;
  /// Admission bar for the lock-free pre-check: a sample below this can
  /// never change the ring.  Starts at threshold_us_ and rises to the
  /// ring's minimum once full.
  std::atomic<std::uint64_t> floor_us_{0};
  mutable std::mutex mu_;
  std::vector<SlowRecord> records_;
};

}  // namespace gcr::serve
