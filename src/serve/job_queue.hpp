#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

/// \file job_queue.hpp
/// A bounded multi-producer multi-consumer queue: the admission-control
/// stage of the routing service.  Producers are transport threads turning
/// protocol frames into jobs; consumers are the persistent worker pool.
/// The bound is what gives the service backpressure — when routing falls
/// behind, `try_push` fails fast and the transport can reject with a
/// retryable error instead of buffering unboundedly.

namespace gcr::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full.  Returns false (dropping \p v) once closed.
  bool push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: false when full or closed (queue saturation —
  /// the caller should shed the request).  Takes an rvalue reference and
  /// moves only on success, so a rejected job stays intact and the caller
  /// can still deliver its failure response.
  bool try_push(T&& v) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Returns nullopt once the queue is closed *and*
  /// drained, which is the worker-pool shutdown signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Stops admission.  Queued jobs still drain; blocked producers and (once
  /// drained) blocked consumers wake and return failure.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::queue<T> items_;
  bool closed_ = false;
};

}  // namespace gcr::serve
