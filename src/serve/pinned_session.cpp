#include "serve/pinned_session.hpp"

#include <utility>

namespace gcr::serve {

std::uint64_t PinnedSession::acquire_ticket() {
  const std::lock_guard<std::mutex> lock(turn_mu_);
  return next_ticket_++;
}

void PinnedSession::wait_turn(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(turn_mu_);
  turn_cv_.wait(lock, [&] { return current_ == ticket; });
}

void PinnedSession::advance_locked() {
  // Skip over tickets whose jobs never reached a worker.
  while (!aborted_.empty() && *aborted_.begin() == current_) {
    aborted_.erase(aborted_.begin());
    ++current_;
  }
}

void PinnedSession::finish_turn(std::uint64_t ticket) {
  const std::lock_guard<std::mutex> lock(turn_mu_);
  if (current_ == ticket) {
    ++current_;
    advance_locked();
    turn_cv_.notify_all();
  }
}

void PinnedSession::abort_turn(std::uint64_t ticket) {
  const std::lock_guard<std::mutex> lock(turn_mu_);
  if (current_ == ticket) {
    ++current_;
    advance_locked();
    turn_cv_.notify_all();
  } else {
    aborted_.insert(ticket);
  }
}

namespace {

std::string format_handle(std::uint64_t n) {
  static const char* hex = "0123456789abcdef";
  std::string out = "pin-";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hex[(n >> shift) & 0xf];
  }
  return out;
}

/// Parses the 16-hex suffix of "pin-<hex>"; returns false for any other
/// shape (restored snapshots may carry foreign handles — those never
/// collide with generated ones, so the counter ignores them).
bool parse_handle(const std::string& handle, std::uint64_t* out) {
  if (handle.size() != 20 || handle.rfind("pin-", 0) != 0) return false;
  std::uint64_t n = 0;
  for (std::size_t i = 4; i < handle.size(); ++i) {
    const char c = handle[i];
    n <<= 4;
    if (c >= '0' && c <= '9') {
      n |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      n |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = n;
  return true;
}

}  // namespace

std::shared_ptr<PinnedSession> PinRegistry::create(
    const std::string& base_key, std::shared_ptr<const layout::Layout> layout,
    const route::SearchEnvironment& base_env, const Owner& owner) {
  // Copy-on-pin happens outside the lock: duplicating the environment's
  // vectors is the expensive part and needs no registry state.
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string handle = format_handle(next_handle_++);
  auto pin = std::make_shared<PinnedSession>(handle, base_key,
                                             std::move(layout), base_env);
  pin->owner = owner;
  pins_.emplace(handle, pin);
  return pin;
}

bool PinRegistry::adopt(std::shared_ptr<PinnedSession> pin) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  if (parse_handle(pin->handle, &n) && n >= next_handle_) {
    next_handle_ = n + 1;
  }
  return pins_.emplace(pin->handle, std::move(pin)).second;
}

std::shared_ptr<PinnedSession> PinRegistry::find(
    const std::string& handle) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(handle);
  return it == pins_.end() ? nullptr : it->second;
}

PinRegistry::ClaimResult PinRegistry::claim(
    const std::string& handle, const Owner& owner,
    std::shared_ptr<PinnedSession>* out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(handle);
  if (it == pins_.end()) return ClaimResult::kNotFound;
  if (it->second->owner != nullptr && it->second->owner != owner) {
    return ClaimResult::kOwnedElsewhere;
  }
  it->second->owner = owner;
  if (out != nullptr) *out = it->second;
  return ClaimResult::kOk;
}

bool PinRegistry::verify(const std::shared_ptr<PinnedSession>& pin,
                         const Owner& owner) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(pin->handle);
  return it != pins_.end() && it->second == pin && pin->owner == owner;
}

bool PinRegistry::erase(const std::string& handle, const Owner& owner) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(handle);
  if (it == pins_.end() || it->second->owner != owner) return false;
  pins_.erase(it);
  return true;
}

std::size_t PinRegistry::release_owner(const Owner& owner, bool preserve) {
  if (owner == nullptr) return 0;
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t released = 0;
  for (auto it = pins_.begin(); it != pins_.end();) {
    if (it->second->owner == owner) {
      if (preserve) {
        // Keep the session registered but claimable — the shutdown path
        // still has a final SAVE to run against it, and a restarted client
        // can re-claim the handle after a restore.
        it->second->owner = nullptr;
        ++it;
      } else {
        it = pins_.erase(it);
      }
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

std::vector<std::shared_ptr<PinnedSession>> PinRegistry::all() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<PinnedSession>> out;
  out.reserve(pins_.size());
  for (const auto& [handle, pin] : pins_) out.push_back(pin);
  return out;
}

std::size_t PinRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pins_.size();
}

}  // namespace gcr::serve
