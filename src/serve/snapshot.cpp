#include "serve/snapshot.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace gcr::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

// ---- encoding ----------------------------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out += static_cast<char>(v);
}

void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

void put_rect(std::string& out, const geom::Rect& r) {
  put_i64(out, r.xlo);
  put_i64(out, r.ylo);
  put_i64(out, r.xhi);
  put_i64(out, r.yhi);
}

// ---- decoding ----------------------------------------------------------

/// Bounds-checked cursor over the payload; every read throws on overrun,
/// so a truncated blob can never yield a value.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::string str(std::uint64_t max_len) {
    const std::uint64_t n = u64();
    if (n > max_len) throw std::runtime_error("snapshot: string too long");
    require(n);
    std::string s(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  geom::Rect rect() {
    geom::Rect r;
    r.xlo = i64();
    r.ylo = i64();
    r.xhi = i64();
    r.yhi = i64();
    return r;
  }

  /// A count that will allocate `elem_bytes`-sized records: bounded by the
  /// remaining payload so a corrupt length cannot drive a huge reserve.
  std::uint64_t count(std::size_t elem_bytes) {
    const std::uint64_t n = u64();
    if (elem_bytes > 0 && n > remaining() / elem_bytes) {
      throw std::runtime_error("snapshot: count exceeds payload");
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  void require(std::uint64_t n) {
    if (n > size_ - pos_) throw std::runtime_error("snapshot: truncated");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_snapshot(const PinSnapshot& snap) {
  std::string payload;
  put_str(payload, snap.handle);
  put_str(payload, snap.base_key);
  put_str(payload, snap.layout_text);
  put_u64(payload, snap.base_obstacles);
  put_rect(payload, snap.boundary);
  put_u64(payload, snap.obstacles.size());
  for (const geom::Rect& r : snap.obstacles) put_rect(payload, r);
  put_u64(payload, snap.lines.size());
  for (const spatial::EscapeLine& l : snap.lines) {
    put_u8(payload, l.axis == geom::Axis::kX ? 0 : 1);
    put_i64(payload, l.track);
    put_i64(payload, l.span.lo);
    put_i64(payload, l.span.hi);
    put_u64(payload, l.source);
  }
  put_u64(payload, snap.committed.size());
  for (const auto& [net, record] : snap.committed) {
    put_u64(payload, net);
    put_u64(payload, record.size());
    for (const std::size_t slot : record) put_u64(payload, slot);
  }
  put_u64(payload, snap.routes.size());
  for (const auto& [net, r] : snap.routes) {
    put_u64(payload, net);
    put_u8(payload, r.ok ? 1 : 0);
    put_i64(payload, r.wirelength);
    put_u64(payload, r.segments.size());
    for (const geom::Segment& s : r.segments) {
      put_i64(payload, s.a.x);
      put_i64(payload, s.a.y);
      put_i64(payload, s.b.x);
      put_i64(payload, s.b.y);
    }
  }

  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload.data(), payload.size()));
  out += payload;
  return out;
}

PinSnapshot decode_snapshot(const std::string& blob) {
  constexpr std::size_t kHeader = sizeof(kSnapshotMagic) + 4 + 8 + 8;
  if (blob.size() < kHeader) {
    throw std::runtime_error("snapshot: truncated header");
  }
  if (std::memcmp(blob.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw std::runtime_error("snapshot: bad magic");
  }
  Reader header(blob.data() + sizeof(kSnapshotMagic), kHeader -
                sizeof(kSnapshotMagic));
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(header.u8()) << (8 * i);
  }
  if (version != kSnapshotVersion) {
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t declared = header.u64();
  const std::uint64_t checksum = header.u64();
  if (blob.size() - kHeader != declared) {
    throw std::runtime_error("snapshot: payload size mismatch");
  }
  const char* payload = blob.data() + kHeader;
  if (fnv1a(payload, static_cast<std::size_t>(declared)) != checksum) {
    throw std::runtime_error("snapshot: checksum mismatch");
  }

  Reader r(payload, static_cast<std::size_t>(declared));
  PinSnapshot snap;
  snap.handle = r.str(4096);
  snap.base_key = r.str(4096);
  snap.layout_text = r.str(1ull << 30);
  snap.base_obstacles = static_cast<std::size_t>(r.u64());
  snap.boundary = r.rect();

  const std::uint64_t n_obstacles = r.count(32);
  snap.obstacles.reserve(static_cast<std::size_t>(n_obstacles));
  for (std::uint64_t i = 0; i < n_obstacles; ++i) {
    snap.obstacles.push_back(r.rect());
  }
  if (snap.base_obstacles > snap.obstacles.size()) {
    throw std::runtime_error("snapshot: base obstacle count out of range");
  }

  const std::uint64_t n_lines = r.count(33);
  if (n_lines != 4 + 4 * n_obstacles) {
    throw std::runtime_error(
        "snapshot: line count disagrees with obstacle count");
  }
  snap.lines.reserve(static_cast<std::size_t>(n_lines));
  for (std::uint64_t i = 0; i < n_lines; ++i) {
    spatial::EscapeLine l;
    const std::uint8_t axis = r.u8();
    if (axis > 1) throw std::runtime_error("snapshot: bad line axis");
    l.axis = axis == 0 ? geom::Axis::kX : geom::Axis::kY;
    l.track = r.i64();
    l.span.lo = r.i64();
    l.span.hi = r.i64();
    l.source = static_cast<std::size_t>(r.u64());
    // The from-scratch layout invariant restore() relies on: boundary
    // lines first (source npos), then slot 4 + 4i + k sourced from i.
    const std::size_t expect =
        i < 4 ? spatial::EscapeLine::npos : static_cast<std::size_t>((i - 4) / 4);
    if (l.source != expect) {
      throw std::runtime_error("snapshot: line source out of order");
    }
    snap.lines.push_back(l);
  }

  const std::uint64_t n_committed = r.count(16);
  for (std::uint64_t i = 0; i < n_committed; ++i) {
    const std::size_t net = static_cast<std::size_t>(r.u64());
    const std::uint64_t n_slots = r.count(8);
    std::vector<std::size_t> record;
    record.reserve(static_cast<std::size_t>(n_slots));
    for (std::uint64_t j = 0; j < n_slots; ++j) {
      const std::size_t slot = static_cast<std::size_t>(r.u64());
      if (slot >= snap.obstacles.size() || slot < snap.base_obstacles) {
        throw std::runtime_error("snapshot: commit record out of range");
      }
      record.push_back(slot);
    }
    if (!snap.committed.emplace(net, std::move(record)).second) {
      throw std::runtime_error("snapshot: duplicate commit record");
    }
  }

  const std::uint64_t n_routes = r.count(25);
  for (std::uint64_t i = 0; i < n_routes; ++i) {
    const std::size_t net = static_cast<std::size_t>(r.u64());
    route::NetRoute nr;
    const std::uint8_t ok = r.u8();
    if (ok > 1) throw std::runtime_error("snapshot: bad route flag");
    nr.ok = ok == 1;
    nr.wirelength = r.i64();
    const std::uint64_t n_segs = r.count(32);
    nr.segments.reserve(static_cast<std::size_t>(n_segs));
    for (std::uint64_t j = 0; j < n_segs; ++j) {
      geom::Point a{r.i64(), r.i64()};
      geom::Point b{r.i64(), r.i64()};
      if (a.x != b.x && a.y != b.y) {
        throw std::runtime_error("snapshot: non-rectilinear segment");
      }
      nr.segments.emplace_back(a, b);
    }
    if (!snap.routes.emplace(net, std::move(nr)).second) {
      throw std::runtime_error("snapshot: duplicate route record");
    }
  }

  if (!r.done()) throw std::runtime_error("snapshot: trailing bytes");
  return snap;
}

}  // namespace gcr::serve
