#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/route_types.hpp"
#include "core/search_environment.hpp"
#include "layout/layout.hpp"

/// \file pinned_session.hpp
/// Mutable derived sessions — the serving layer's session *lifecycle*.
///
/// A cached LayoutSession is immutable and shared: every request routes
/// against the same read-only environment.  A PIN derives a private,
/// *mutable* copy for one client: the environment is copied (plain vector
/// duplication — never a rebuild) and the client then mutates its committed
/// remainder incrementally with COMMIT/UNCOMMIT/REROUTE, exactly the
/// open/own/mutate/close session shape of a stateful device server.
///
/// Ownership: a pin belongs to the connection that created (or claimed) it,
/// identified by the connection's cancel token — the same object the
/// disconnect path already flips, so auto-release on disconnect rides the
/// existing cancellation plumbing.  A pin restored from a snapshot starts
/// unowned until a client claims it with `PIN <handle>`.
///
/// Ordering: pipelined mutations of one pin must apply in submission order
/// even though the worker pool runs jobs concurrently.  Each mutating op
/// takes a ticket at admission (on the owning connection's single
/// submitting thread, so ticket order equals queue order) and the worker
/// gates on its turn — a per-pin FIFO layered over the pool's FIFO queue.

namespace gcr::serve {

/// One pinned (exclusively owned, mutable) derived session.
///
/// The layout is shared with the base session (aliasing pointer) or owned
/// outright after a restore; `env` and `routes` are private to the pin.
/// Mutating members is only safe from the worker holding the pin's current
/// ticket; `owner` is guarded by the PinRegistry mutex.
struct PinnedSession {
  std::string handle;    ///< "pin-" + 16 hex digits, or the restored name
  std::string base_key;  ///< content key of the session it derived from
  std::shared_ptr<const layout::Layout> layout;
  /// Net name -> net index (copied from the base session or rebuilt on
  /// restore), so COMMIT/UNCOMMIT/REROUTE resolve names without scans.
  std::map<std::string, std::size_t> net_index;
  route::SearchEnvironment env;
  /// Per-net results of committed attempts, keyed by net id.  An `ok`
  /// entry has its wire halos committed into `env`; a failed entry is
  /// recorded too (UNCOMMIT clears it, COMMIT refuses to re-attempt it
  /// until then), so the committed remainder is always explicit.
  std::map<std::size_t, route::NetRoute> routes;

  /// Owning connection identity (its cancel token), nullptr = unowned.
  /// Read/written only under the PinRegistry mutex.
  std::shared_ptr<std::atomic<bool>> owner;

  PinnedSession(std::string h, std::string base,
                std::shared_ptr<const layout::Layout> lay,
                route::SearchEnvironment e)
      : handle(std::move(h)),
        base_key(std::move(base)),
        layout(std::move(lay)),
        env(std::move(e)) {
    for (std::size_t i = 0; i < layout->nets().size(); ++i) {
      net_index.emplace(layout->nets()[i].name(), i);
    }
  }

  /// FIFO op ordering (see file comment).  acquire_ticket on the admission
  /// thread; the worker brackets the op with wait_turn/finish_turn; a job
  /// that never reaches a worker (queue rejection) must abort_turn so the
  /// chain keeps advancing.
  [[nodiscard]] std::uint64_t acquire_ticket();
  void wait_turn(std::uint64_t ticket);
  void finish_turn(std::uint64_t ticket);
  void abort_turn(std::uint64_t ticket);

 private:
  std::mutex turn_mu_;
  std::condition_variable turn_cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t current_ = 0;
  /// Tickets aborted while not yet current; drained as current_ advances.
  std::set<std::uint64_t> aborted_;

  void advance_locked();
};

/// Thread-safe registry of pinned sessions, keyed by handle.
class PinRegistry {
 public:
  using Owner = std::shared_ptr<std::atomic<bool>>;

  /// Derives a new pin and registers it owned by \p owner.  The handle is
  /// generated ("pin-" + 16 hex digits of a per-registry counter).
  std::shared_ptr<PinnedSession> create(
      const std::string& base_key,
      std::shared_ptr<const layout::Layout> layout,
      const route::SearchEnvironment& base_env, const Owner& owner);

  /// Registers a restored pin (unowned) under its snapshotted handle.
  /// Returns false when the handle is already taken (duplicate snapshot
  /// files) — the caller skips the file.  Bumps the handle counter past
  /// any numeric "pin-<hex>" suffix so new pins never collide.
  bool adopt(std::shared_ptr<PinnedSession> pin);

  [[nodiscard]] std::shared_ptr<PinnedSession> find(
      const std::string& handle) const;

  enum class ClaimResult { kOk, kNotFound, kOwnedElsewhere };
  /// Claims \p handle for \p owner: succeeds when the pin is unowned or
  /// already owned by \p owner (idempotent re-claim).  \p out receives the
  /// pin on kOk.
  ClaimResult claim(const std::string& handle, const Owner& owner,
                    std::shared_ptr<PinnedSession>* out);

  /// True when the pin is still registered under its handle and owned by
  /// \p owner — the worker-side re-check after queue wait.
  [[nodiscard]] bool verify(const std::shared_ptr<PinnedSession>& pin,
                            const Owner& owner) const;

  /// Unregisters the pin (UNPIN).  Only the owner may; returns false when
  /// the handle is gone or owned elsewhere.
  bool erase(const std::string& handle, const Owner& owner);

  /// Releases every pin owned by \p owner — the disconnect auto-release.
  /// Destroys them by default; with \p preserve the pins stay registered
  /// but become unowned (claimable again), which is what a graceful
  /// shutdown wants: the drain can still final-SAVE state whose client
  /// just hung up.  Returns how many were released.
  std::size_t release_owner(const Owner& owner, bool preserve = false);

  /// Every registered pin, in handle order — the enumeration the final
  /// SAVE and the periodic autosave sweep over.
  [[nodiscard]] std::vector<std::shared_ptr<PinnedSession>> all() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<PinnedSession>> pins_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace gcr::serve
