#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gcr::serve {

std::uint64_t LatencyWindow::percentile(double q) const {
  return percentiles({q}).front();
}

std::vector<std::uint64_t> LatencyWindow::percentiles(
    const std::vector<double>& qs) const {
  std::vector<std::uint64_t> sorted;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  std::vector<std::uint64_t> out(qs.size(), 0);
  if (sorted.empty()) return out;
  // One sort serves every quantile: the copy happens once (above, under the
  // mutex) and each query is an O(1) rank lookup.
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const double q = std::clamp(qs[i], 0.0, 100.0);
    // Nearest-rank: the smallest sample with at least q% of samples <= it.
    const auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
    out[i] = sorted[rank == 0 ? 0 : rank - 1];
  }
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  os << "requests_submitted " << requests_submitted << '\n'
     << "requests_ok " << requests_ok << '\n'
     << "requests_rejected " << requests_rejected << '\n'
     << "requests_expired " << requests_expired << '\n'
     << "requests_cancelled " << requests_cancelled << '\n'
     << "requests_not_found " << requests_not_found << '\n'
     << "requests_errored " << requests_errored << '\n'
     << "nets_routed " << nets_routed << '\n'
     << "nets_failed " << nets_failed << '\n'
     << "loads_offloaded " << loads_offloaded << '\n'
     << "loads_ok " << loads_ok << '\n'
     << "loads_failed " << loads_failed << '\n'
     << "optimizes_ok " << optimizes_ok << '\n'
     << "optimize_passes " << optimize_passes << '\n'
     << "stages_ok " << stages_ok << '\n'
     << "stages_failed " << stages_failed << '\n'
     << "gens_ok " << gens_ok << '\n'
     << "gens_failed " << gens_failed << '\n'
     << "pins_created " << pins_created << '\n'
     << "pins_released " << pins_released << '\n'
     << "pins_restored " << pins_restored << '\n'
     << "pin_ops_ok " << pin_ops_ok << '\n'
     << "pin_ops_failed " << pin_ops_failed << '\n'
     << "pin_saves " << pin_saves << '\n'
     << "pin_autosaves " << pin_autosaves << '\n'
     << "pins_active " << pins_active << '\n'
     << "stage_cache_hits " << stage_cache_hits << '\n'
     << "stage_cache_misses " << stage_cache_misses << '\n'
     << "stage_cache_evictions " << stage_cache_evictions << '\n'
     << "stage_cache_size " << stage_cache_size << '\n'
     << "latency_p50_us " << latency_p50_us << '\n'
     << "latency_p95_us " << latency_p95_us << '\n'
     << "latency_p99_us " << latency_p99_us << '\n'
     << "queue_wait_p50_us " << queue_wait_p50_us << '\n';
  for (std::size_t i = 0; i < kVerbKinds; ++i) {
    const std::string_view name = to_string(static_cast<VerbKind>(i));
    const VerbLatencySnapshot& v = verbs[i];
    os << "verb_" << name << "_count " << v.count << '\n'
       << "verb_" << name << "_p50_us " << v.p50_us << '\n'
       << "verb_" << name << "_p95_us " << v.p95_us << '\n'
       << "verb_" << name << "_p99_us " << v.p99_us << '\n';
  }
  os << "uptime_s " << uptime_s << '\n'
     << "protocol_version " << protocol_version << '\n'
     << "queue_depth " << queue_depth << '\n'
     << "queue_capacity " << queue_capacity << '\n'
     << "queue_shards " << queue_shards << '\n'
     << "queue_fair_rounds " << queue_fair_rounds << '\n'
     << "queue_oldest_wait_us " << queue_oldest_wait_us << '\n';
  // Live shards only: an idle queue renders no shard lines, so the key set
  // above stays stable for dashboards while skew remains observable the
  // moment it exists.
  for (std::size_t i = 0; i < queue_shard_stats.size(); ++i) {
    const QueueShardSnapshot& q = queue_shard_stats[i];
    os << "queue_shard" << i << "_depth " << q.depth << '\n'
       << "queue_shard" << i << "_enqueued " << q.enqueued << '\n'
       << "queue_shard" << i << "_served " << q.served << '\n'
       << "queue_shard" << i << "_head_wait_us " << q.head_wait_us << '\n';
  }
  os << "workers " << workers << '\n'
     << "cache_hits " << cache_hits << '\n'
     << "cache_misses " << cache_misses << '\n'
     << "cache_evictions " << cache_evictions << '\n'
     << "cache_size " << cache_size << '\n';
  return os.str();
}

}  // namespace gcr::serve
