#include "serve/trace.hpp"

#include <algorithm>
#include <sstream>

namespace gcr::serve {

std::uint64_t Histogram::Snapshot::percentile(double q) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  // Nearest-rank against the bucket mass actually read (the atomics are
  // sampled bucket-by-bucket, so `count` may disagree by in-flight records).
  std::uint64_t rank = static_cast<std::uint64_t>(
      (q / 100.0) * static_cast<double>(total) + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(buckets.size() - 1);
}

std::string_view to_string(VerbKind kind) noexcept {
  switch (kind) {
    case VerbKind::kRoute:
      return "route";
    case VerbKind::kReroute:
      return "reroute";
    case VerbKind::kOptimize:
      return "optimize";
    case VerbKind::kDetail:
      return "detail";
    case VerbKind::kCongest:
      return "congest";
    case VerbKind::kVerify:
      return "verify";
    case VerbKind::kSvg:
      return "svg";
    case VerbKind::kLoad:
      return "load";
    case VerbKind::kGen:
      return "gen";
    case VerbKind::kPin:
      return "pin";
    case VerbKind::kStats:
      return "stats";
    case VerbKind::kCount_:
      break;
  }
  return "unknown";
}

std::string RequestTrace::render_meta() const {
  std::ostringstream os;
  os << " span_admit_us=" << enqueue_us
     << " span_queue_us=" << (dequeue_us - enqueue_us)
     << " span_env_us=" << (env_us - dequeue_us)
     << " span_exec_us=" << (exec_us - env_us)
     << " span_finish_us=" << (total_us - exec_us)
     << " span_parse_us=" << parse_us;
  for (const Sub& sub : subs) {
    os << " sub_" << sub.label << "_us=" << sub.at_us;
  }
  return os.str();
}

void SlowRequestRing::offer(SlowRecord rec) {
  const std::uint64_t total = rec.trace.total_us;
  if (total < threshold_us_) return;
  // Lock-free fast path: a sample at or below the floor of a full ring can
  // never displace anything.
  const std::uint64_t floor = floor_us_.load(std::memory_order_relaxed);
  if (floor != 0 && total <= floor) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() < capacity_) {
    records_.push_back(std::move(rec));
  } else {
    auto worst = std::min_element(
        records_.begin(), records_.end(),
        [](const SlowRecord& a, const SlowRecord& b) {
          return a.trace.total_us < b.trace.total_us;
        });
    if (worst->trace.total_us >= total) return;
    *worst = std::move(rec);
  }
  if (records_.size() == capacity_) {
    std::uint64_t min_us = ~std::uint64_t{0};
    for (const SlowRecord& r : records_) {
      min_us = std::min(min_us, r.trace.total_us);
    }
    floor_us_.store(min_us, std::memory_order_relaxed);
  }
}

std::vector<SlowRecord> SlowRequestRing::top(std::size_t n) const {
  std::vector<SlowRecord> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = records_;
  }
  std::sort(out.begin(), out.end(), [](const SlowRecord& a,
                                       const SlowRecord& b) {
    if (a.trace.total_us != b.trace.total_us) {
      return a.trace.total_us > b.trace.total_us;
    }
    return a.id < b.id;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace gcr::serve
