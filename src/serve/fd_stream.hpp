#pragma once

#include <array>
#include <istream>
#include <ostream>
#include <streambuf>

/// \file fd_stream.hpp
/// Minimal iostream adapters over a POSIX file descriptor, so the protocol
/// loop (which speaks std::istream/std::ostream) can serve any byte pipe:
/// stdin/stdout, a pipe pair, or one end of a socketpair.  The daemon and
/// the load generator both build on this instead of duplicating read/write
/// loops.  POSIX-only; on other platforms construction throws.

namespace gcr::serve {

/// A std::streambuf reading from and writing to the same descriptor (the
/// socketpair case).  Use two instances for distinct read/write fds (the
/// stdin/stdout pipe case).  Does not own or close the descriptor.
class FdStreamBuf final : public std::streambuf {
 public:
  /// \p read_fd / \p write_fd may be -1 to disable that direction.
  FdStreamBuf(int read_fd, int write_fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;

 private:
  bool flush_buffer();

  int read_fd_;
  int write_fd_;
  std::array<char, 8192> in_buf_{};
  std::array<char, 8192> out_buf_{};
};

/// A bidirectional stream pair over descriptors: `.in()` to read frames,
/// `.out()` to write them.  For a socketpair pass the same fd twice.
class FdTransport {
 public:
  FdTransport(int read_fd, int write_fd)
      : in_buf_(read_fd, -1), out_buf_(-1, write_fd),
        in_(&in_buf_), out_(&out_buf_) {}
  explicit FdTransport(int socket_fd) : FdTransport(socket_fd, socket_fd) {}

  [[nodiscard]] std::istream& in() noexcept { return in_; }
  [[nodiscard]] std::ostream& out() noexcept { return out_; }

 private:
  FdStreamBuf in_buf_;
  FdStreamBuf out_buf_;
  std::istream in_;
  std::ostream out_;
};

}  // namespace gcr::serve
