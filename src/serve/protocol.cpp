#include "serve/protocol.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"
#include "workload/padring.hpp"

namespace gcr::serve {

namespace {

/// Outcome of one bounded line read.
enum class LineRead {
  kLine,     ///< a complete (possibly empty) line, CR stripped
  kEof,      ///< no more input
  kTooLong,  ///< exceeded kMaxCommandLine; discarded up to the next LF
};

/// getline with a hard length cap: the blocking loop's defence against a
/// peer that streams bytes without ever sending `\n` (std::getline would
/// buffer all of them, bypassing the LOAD size cap).  An overlong line is
/// discarded to its terminating LF so framing survives.
LineRead read_line_capped(std::istream& in, std::string& line) {
  line.clear();
  int ch;
  while ((ch = in.get()) != std::istream::traits_type::eof()) {
    if (ch == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return LineRead::kLine;
    }
    if (line.size() >= kMaxCommandLine) {
      while ((ch = in.get()) != std::istream::traits_type::eof() &&
             ch != '\n') {
      }
      return LineRead::kTooLong;
    }
    line.push_back(static_cast<char>(ch));
  }
  if (line.empty()) return LineRead::kEof;
  if (line.back() == '\r') line.pop_back();  // trailing line without LF
  return LineRead::kLine;
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Strict non-negative integer parse with token context in the error.
unsigned long long parse_count(const std::string& tok,
                               const std::string& what) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(what + ": expected a non-negative integer, got '" +
                             tok + "'");
  }
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    throw std::runtime_error(what + ": value out of range: '" + tok + "'");
  }
}

/// Splits a `nets=` value on commas.  Empty items (leading, trailing, or
/// doubled commas) are malformed — they would silently route nothing.
std::vector<std::string> split_net_list(const std::string& value,
                                        const std::string& what) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) {
      throw std::runtime_error(what + ": empty net name in list");
    }
    out.push_back(item);
    if (comma == std::string::npos) return out;
    start = comma + 1;
  }
}

/// parse_count plus the 24-hour cap shared by deadline_ms and budget_ms:
/// std::chrono::milliseconds has a signed rep, so an uncapped ULLONG_MAX
/// count would narrow to a negative duration, and adding it to
/// steady_clock::now() overflows the clock rep (signed-overflow UB).
unsigned long long parse_duration_ms(const std::string& tok,
                                     const std::string& what) {
  const unsigned long long ms = parse_count(tok, what);
  if (ms > kMaxDeadlineMs) {
    throw std::runtime_error(what + ": at most " +
                             std::to_string(kMaxDeadlineMs) + " ms (24h)");
  }
  return ms;
}

constexpr unsigned long long kNoCap = ~0ull;

// ------------------------------------------------------- the shared parser

/// One validated knob value.  Which member is meaningful follows from the
/// KnobSpec's type; keeping them side by side beats a variant for a parser
/// this small.
struct KnobValue {
  unsigned long long num = 0;                               ///< kCount/kDuration
  bool flag = false;                                        ///< kBool
  double real = 0.0;                                        ///< kScale
  route::NetlistMode mode = route::NetlistMode::kIndependent;  ///< kMode
  std::vector<std::string> list;                            ///< kNets
};

struct ParsedArgs {
  std::vector<std::string> positionals;
  std::map<std::string, KnobValue> values;

  [[nodiscard]] const KnobValue* find(const char* key) const {
    const auto it = values.find(key);
    return it == values.end() ? nullptr : &it->second;
  }
};

/// Parses one knob value per its spec.  Every error message is derived
/// uniformly from `<verb> <key>` + the spec's range, so all verbs reject
/// with identical shapes.
KnobValue parse_knob(const KnobSpec& spec, const char* verb,
                     const std::string& value) {
  const std::string what = std::string(verb) + " " + spec.key;
  KnobValue out;
  switch (spec.type) {
    case KnobType::kCount: {
      const unsigned long long n = parse_count(value, what);
      if (spec.hi != kNoCap && (n < spec.lo || n > spec.hi)) {
        throw std::runtime_error(
            spec.lo == 0
                ? what + ": at most " + std::to_string(spec.hi)
                : what + ": must be " + std::to_string(spec.lo) + ".." +
                      std::to_string(spec.hi));
      }
      out.num = n;
      break;
    }
    case KnobType::kDuration:
      out.num = parse_duration_ms(value, what);
      break;
    case KnobType::kBool:
      if (value != "0" && value != "1") {
        throw std::runtime_error(what + " must be 0 or 1");
      }
      out.flag = value == "1";
      break;
    case KnobType::kMode:
      if (value == "independent") {
        out.mode = route::NetlistMode::kIndependent;
      } else if (value == "sequential") {
        out.mode = route::NetlistMode::kSequential;
      } else {
        throw std::runtime_error(what + " must be independent or sequential, "
                                 "got '" + value + "'");
      }
      break;
    case KnobType::kScale: {
      // The charset filter pins the grammar (no signs, exponents, inf/nan,
      // whitespace); the pos check then rejects tokens std::stod would
      // silently truncate to a numeric prefix, like "1.2.3".
      if (value.empty() ||
          value.find_first_not_of("0123456789.") != std::string::npos) {
        throw std::runtime_error(what + ": expected a number, got '" + value +
                                 "'");
      }
      double s = 0.0;
      std::size_t pos = 0;
      try {
        s = std::stod(value, &pos);
      } catch (const std::out_of_range&) {
        throw std::runtime_error(what + ": value out of range");
      } catch (const std::exception&) {
        throw std::runtime_error(what + ": expected a number, got '" + value +
                                 "'");
      }
      if (pos != value.size()) {
        throw std::runtime_error(what + ": expected a number, got '" + value +
                                 "'");
      }
      if (!(s >= 0.0625 && s <= 64.0)) {
        throw std::runtime_error(what + ": must be in [0.0625, 64]");
      }
      out.real = s;
      break;
    }
    case KnobType::kNets:
      out.list = split_net_list(value, what);
      break;
  }
  return out;
}

/// The generic tokenizer/validator every verb shares: positional arity,
/// key=value shape, knob lookup, per-type value validation, required-knob
/// presence.  Word order is preserved — the first malformed word wins.
ParsedArgs parse_args(const VerbSpec& verb, const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.size() < verb.min_args) {
    throw std::runtime_error(std::string(verb.name) + " needs " +
                             verb.args_doc);
  }
  ParsedArgs out;
  out.positionals.assign(words.begin(),
                         words.begin() + static_cast<std::ptrdiff_t>(
                                             verb.min_args));
  for (std::size_t i = verb.min_args; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error(std::string(verb.name) + " option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    const KnobSpec* spec = nullptr;
    for (const KnobSpec& k : verb.knobs) {
      if (key == k.key) {
        spec = &k;
        break;
      }
    }
    if (spec == nullptr) {
      throw std::runtime_error(std::string(verb.name) + ": unknown option '" +
                               key + "'");
    }
    if (spec->reject_msg != nullptr) {
      throw std::runtime_error(spec->reject_msg);
    }
    out.values.insert_or_assign(key, parse_knob(*spec, verb.name, value));
  }
  for (const KnobSpec& k : verb.knobs) {
    if (k.required && out.values.find(k.key) == out.values.end()) {
      throw std::runtime_error(std::string(verb.name) + " needs " + k.key +
                               "=" + k.missing_doc);
    }
  }
  return out;
}

const VerbSpec& verb_for(CommandKind kind) {
  for (const VerbSpec& v : verb_table()) {
    if (v.kind == kind) return v;
  }
  throw std::logic_error("verb_table: no row for command kind");
}

// ------------------------------------------------------- response metas

/// The single OK-meta formatter: every response meta is a space-separated
/// `key=value` list built through here, so clients parse one shape for
/// every verb (QUIT's bare `bye` and STATS' body are the documented
/// exceptions).
class MetaBuilder {
 public:
  template <typename T>
  MetaBuilder& add(const char* key, const T& value) {
    sep();
    os_ << key << '=' << value;
    return *this;
  }

  /// Splices an already key=value-formatted run (a stage's own meta).
  MetaBuilder& raw(const std::string& text) {
    if (text.empty()) return *this;
    sep();
    os_ << text;
    return *this;
  }

  [[nodiscard]] std::string str() { return std::move(os_).str(); }

 private:
  void sep() {
    if (!first_) os_ << ' ';
    first_ = false;
  }

  std::ostringstream os_;
  bool first_ = true;
};

std::string format_status_err(RouteStatus status, const std::string& error) {
  return format_err(error.empty()
                        ? to_string(status)
                        : std::string(to_string(status)) + ": " + error);
}

// Table-row factories: KnobSpec/VerbSpec carry defaulted fields, and the
// build treats partially-designated aggregate init as an error.
KnobSpec knob(const char* key, KnobType type = KnobType::kCount,
              unsigned long long lo = 0, unsigned long long hi = kNoCap) {
  KnobSpec k;
  k.key = key;
  k.type = type;
  k.lo = lo;
  k.hi = hi;
  return k;
}

KnobSpec required(KnobSpec k, const char* missing_doc) {
  k.required = true;
  k.missing_doc = missing_doc;
  return k;
}

KnobSpec rejected(const char* key, const char* msg) {
  KnobSpec k;
  k.key = key;
  k.reject_msg = msg;
  return k;
}

VerbSpec verb(const char* name, CommandKind kind, std::size_t min_args = 0,
              const char* args_doc = "", std::vector<KnobSpec> knobs = {}) {
  VerbSpec v;
  v.name = name;
  v.kind = kind;
  v.min_args = min_args;
  v.args_doc = args_doc;
  v.knobs = std::move(knobs);
  return v;
}

}  // namespace

const std::vector<VerbSpec>& verb_table() {
  static const std::vector<VerbSpec> table = [] {
    const KnobSpec deadline = knob("deadline_ms", KnobType::kDuration);
    // trace=1 asks the server to echo the span breakdown in the response
    // meta; accepted by every verb that flows through the worker pool.
    const KnobSpec trace = knob("trace", KnobType::kBool);
    std::vector<VerbSpec> t;
    t.push_back(verb("HELLO", CommandKind::kHello));
    // LOAD's byte count is parsed by parse_load_count (the body framing
    // needs it before any generic tokenization); the row classifies and
    // advertises the verb.
    t.push_back(verb("LOAD", CommandKind::kLoad, 1, "exactly one byte count"));
    t.push_back(verb("ROUTE", CommandKind::kRoute, 1, "a session key",
                     {knob("mode", KnobType::kMode),
                      knob("threads", KnobType::kCount, 0, 1024), deadline,
                      knob("sorted", KnobType::kBool),
                      knob("segments", KnobType::kBool),
                      knob("nets", KnobType::kNets), trace}));
    t.push_back(verb(
        "REROUTE", CommandKind::kReroute, 1, "a session key",
        {rejected("mode", "REROUTE is always sequential; mode= is not "
                          "accepted"),
         knob("threads", KnobType::kCount, 0, 1024), deadline,
         knob("sorted", KnobType::kBool), knob("segments", KnobType::kBool),
         required(knob("nets", KnobType::kNets),
                  "<name>[,<name>]... (the rip-up set)"),
         trace}));
    t.push_back(verb("OPTIMIZE", CommandKind::kOptimize, 1, "a session key",
                     {knob("passes", KnobType::kCount, 1, 1024),
                      knob("budget_ms", KnobType::kDuration), deadline,
                      knob("segments", KnobType::kBool), trace}));
    t.push_back(verb("DETAIL", CommandKind::kDetail, 1, "a session key",
                     {knob("window", KnobType::kCount, 1, 1'000'000),
                      knob("pitch", KnobType::kCount, 1, 1'000'000),
                      deadline, trace}));
    t.push_back(verb("CONGEST", CommandKind::kCongest, 1, "a session key",
                     {knob("penalty", KnobType::kCount, 0, 1'000'000'000),
                      knob("iterations", KnobType::kCount, 1, 64),
                      knob("wire_pitch", KnobType::kCount, 1, 1'000'000),
                      knob("max_gap", KnobType::kCount, 0, 1'000'000),
                      deadline, trace}));
    t.push_back(verb("VERIFY", CommandKind::kVerify, 1, "a session key",
                     {knob("all_routed", KnobType::kBool), deadline, trace}));
    t.push_back(verb("SVG", CommandKind::kSvg, 1, "a session key",
                     {knob("scale", KnobType::kScale),
                      knob("pins", KnobType::kBool),
                      knob("names", KnobType::kBool), deadline, trace}));
    t.push_back(verb("GEN", CommandKind::kGen, 1,
                     "a kind (floorplan, standard, or padring)",
                     {required(knob("seed"), "<n>"),
                      knob("cells", KnobType::kCount, 1, 4096),
                      knob("extent", KnobType::kCount, 64, 1'048'576),
                      knob("nets", KnobType::kCount, 0, 65'536),
                      knob("pads", KnobType::kCount, 1, 256)}));
    t.push_back(verb("PIN", CommandKind::kPin, 1,
                     "a session key or pin handle"));
    t.push_back(verb("UNPIN", CommandKind::kUnpin, 1, "a pin handle"));
    t.push_back(verb("COMMIT", CommandKind::kCommit, 1, "a pin handle",
                     {required(knob("nets", KnobType::kNets),
                               "<name>[,<name>]...")}));
    t.push_back(verb("UNCOMMIT", CommandKind::kUncommit, 1, "a pin handle",
                     {required(knob("nets", KnobType::kNets),
                               "<name>[,<name>]...")}));
    t.push_back(verb("SAVE", CommandKind::kSave, 2,
                     "a pin handle and a file name"));
    t.push_back(verb("STATS", CommandKind::kStats));
    t.push_back(verb("TRACE", CommandKind::kTrace, 0, "",
                     {knob("n", KnobType::kCount, 1, 256)}));
    t.push_back(verb("QUIT", CommandKind::kQuit));
    return t;
  }();
  return table;
}

ClassifiedCommand classify_command(const std::string& line) {
  ClassifiedCommand out;
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return out;  // kBlank
  std::size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) end = line.size();
  out.keyword = line.substr(start, end - start);
  out.args = line.substr(end);
  out.kind = CommandKind::kUnknown;
  for (const VerbSpec& v : verb_table()) {
    if (out.keyword == v.name) {
      out.kind = v.kind;
      break;
    }
  }
  return out;
}

namespace {

/// ROUTE and REROUTE share knob -> field application; the rows differ only
/// in nets= being required and mode= being rejected.
RouteCommand build_route_command(const VerbSpec& verb,
                                 const std::string& args) {
  const ParsedArgs pa = parse_args(verb, args);
  RouteCommand cmd;
  cmd.session_key = pa.positionals[0];
  if (const KnobValue* v = pa.find("mode")) cmd.opts.mode = v->mode;
  if (const KnobValue* v = pa.find("threads")) {
    cmd.opts.threads = static_cast<unsigned>(v->num);
  }
  if (const KnobValue* v = pa.find("deadline_ms")) {
    cmd.deadline = std::chrono::milliseconds(v->num);
  }
  if (const KnobValue* v = pa.find("sorted")) {
    cmd.opts.sorted_dispatch = v->flag;
  }
  if (const KnobValue* v = pa.find("segments")) {
    cmd.opts.steiner.connect_to_segments = v->flag;
  }
  if (const KnobValue* v = pa.find("nets")) cmd.nets = v->list;
  if (const KnobValue* v = pa.find("trace")) cmd.trace = v->flag;
  return cmd;
}

}  // namespace

RouteCommand parse_route_command(const std::string& args) {
  return build_route_command(verb_for(CommandKind::kRoute), args);
}

RouteCommand parse_reroute_command(const std::string& args) {
  RouteCommand cmd = build_route_command(verb_for(CommandKind::kReroute), args);
  cmd.opts.mode = route::NetlistMode::kSequential;
  cmd.reroute = true;
  return cmd;
}

RouteCommand parse_optimize_command(const std::string& args) {
  const ParsedArgs pa = parse_args(verb_for(CommandKind::kOptimize), args);
  RouteCommand cmd;
  cmd.session_key = pa.positionals[0];
  cmd.optimize = true;
  cmd.opts.mode = route::NetlistMode::kSequential;
  if (const KnobValue* v = pa.find("passes")) {
    cmd.passes = static_cast<std::size_t>(v->num);
  }
  if (const KnobValue* v = pa.find("budget_ms")) {
    cmd.budget = std::chrono::milliseconds(v->num);
  }
  if (const KnobValue* v = pa.find("deadline_ms")) {
    cmd.deadline = std::chrono::milliseconds(v->num);
  }
  if (const KnobValue* v = pa.find("segments")) {
    cmd.opts.steiner.connect_to_segments = v->flag;
  }
  if (const KnobValue* v = pa.find("trace")) cmd.trace = v->flag;
  return cmd;
}

RouteCommand parse_stage_command(pipeline::StageKind kind,
                                 const std::string& args) {
  const CommandKind ck = kind == pipeline::StageKind::kDetail
                             ? CommandKind::kDetail
                         : kind == pipeline::StageKind::kCongest
                             ? CommandKind::kCongest
                         : kind == pipeline::StageKind::kVerify
                             ? CommandKind::kVerify
                             : CommandKind::kSvg;
  const ParsedArgs pa = parse_args(verb_for(ck), args);
  RouteCommand cmd;
  cmd.session_key = pa.positionals[0];
  pipeline::StageOptions sopts;
  sopts.kind = kind;
  if (const KnobValue* v = pa.find("deadline_ms")) {
    cmd.deadline = std::chrono::milliseconds(v->num);
  }
  if (const KnobValue* v = pa.find("window")) {
    sopts.channel_window = static_cast<geom::Coord>(v->num);
  }
  if (const KnobValue* v = pa.find("pitch")) {
    sopts.track_pitch = static_cast<geom::Coord>(v->num);
  }
  if (const KnobValue* v = pa.find("penalty")) {
    sopts.penalty_dbu = static_cast<geom::Cost>(v->num);
  }
  if (const KnobValue* v = pa.find("iterations")) {
    sopts.max_iterations = static_cast<std::size_t>(v->num);
  }
  if (const KnobValue* v = pa.find("wire_pitch")) {
    sopts.wire_pitch = static_cast<geom::Coord>(v->num);
  }
  if (const KnobValue* v = pa.find("max_gap")) {
    sopts.max_gap = static_cast<geom::Coord>(v->num);
  }
  if (const KnobValue* v = pa.find("all_routed")) {
    sopts.require_all_routed = v->flag;
  }
  if (const KnobValue* v = pa.find("scale")) sopts.scale = v->real;
  if (const KnobValue* v = pa.find("pins")) sopts.draw_pins = v->flag;
  if (const KnobValue* v = pa.find("names")) sopts.draw_cell_names = v->flag;
  if (const KnobValue* v = pa.find("trace")) cmd.trace = v->flag;
  cmd.stage = sopts;
  return cmd;
}

const char* to_string(GenCommand::Kind k) noexcept {
  switch (k) {
    case GenCommand::Kind::kFloorplan: return "floorplan";
    case GenCommand::Kind::kStandard: return "standard";
    case GenCommand::Kind::kPadring: return "padring";
  }
  return "?";
}

GenCommand parse_gen_command(const std::string& args) {
  const ParsedArgs pa = parse_args(verb_for(CommandKind::kGen), args);
  GenCommand cmd;
  const std::string& kind = pa.positionals[0];
  if (kind == "floorplan") {
    cmd.kind = GenCommand::Kind::kFloorplan;
  } else if (kind == "standard") {
    cmd.kind = GenCommand::Kind::kStandard;
  } else if (kind == "padring") {
    cmd.kind = GenCommand::Kind::kPadring;
  } else {
    throw std::runtime_error("GEN kind must be floorplan, standard, or "
                             "padring, got '" + kind + "'");
  }
  // seed= is required (enforced by the table): a defaulted seed would
  // silently alias every unseeded GEN onto one session.
  cmd.seed = pa.find("seed")->num;
  if (const KnobValue* v = pa.find("cells")) {
    cmd.cells = static_cast<std::size_t>(v->num);
  }
  if (const KnobValue* v = pa.find("extent")) {
    cmd.extent = static_cast<geom::Coord>(v->num);
  }
  if (const KnobValue* v = pa.find("nets")) {
    cmd.nets = static_cast<std::size_t>(v->num);
  }
  if (const KnobValue* v = pa.find("pads")) {
    cmd.pads = static_cast<std::size_t>(v->num);
  }
  return cmd;
}

PinRequest parse_pin_command(CommandKind kind, const std::string& args) {
  const ParsedArgs pa = parse_args(verb_for(kind), args);
  PinRequest req;
  req.key = pa.positionals[0];
  switch (kind) {
    case CommandKind::kPin:
      req.op = PinRequest::Op::kPin;
      break;
    case CommandKind::kUnpin:
      req.op = PinRequest::Op::kUnpin;
      break;
    case CommandKind::kCommit:
      req.op = PinRequest::Op::kCommit;
      req.nets = pa.find("nets")->list;
      break;
    case CommandKind::kUncommit:
      req.op = PinRequest::Op::kUncommit;
      req.nets = pa.find("nets")->list;
      break;
    case CommandKind::kSave:
      req.op = PinRequest::Op::kSave;
      req.save_name = pa.positionals[1];
      break;
    default:
      throw std::logic_error("parse_pin_command: not a pin verb");
  }
  return req;
}

std::string generate_workload_text(const GenCommand& cmd) {
  switch (cmd.kind) {
    case GenCommand::Kind::kFloorplan: {
      workload::FloorplanOptions fp;
      fp.cell_count = cmd.cells;
      fp.boundary = geom::Rect{0, 0, cmd.extent, cmd.extent};
      fp.seed = cmd.seed;
      return io::write_layout_string(workload::random_floorplan(fp));
    }
    case GenCommand::Kind::kStandard:
      return io::write_layout_string(
          workload::standard_workload(cmd.cells, cmd.extent, cmd.nets,
                                      cmd.seed));
    case GenCommand::Kind::kPadring: {
      layout::Layout lay = workload::standard_workload(
          cmd.cells, cmd.extent, cmd.nets, cmd.seed);
      workload::PadRingOptions pr;
      pr.pads_per_side = cmd.pads;
      pr.seed = cmd.seed + 3;  // seed..seed+2 are standard_workload's
      workload::add_pad_ring(lay, pr);
      return io::write_layout_string(lay);
    }
  }
  throw std::runtime_error("GEN: unhandled kind");
}

unsigned long long parse_load_count(const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.size() != 2) {
    throw std::runtime_error("LOAD needs exactly one byte count");
  }
  return parse_count(words[1], "LOAD byte count");
}

RouteRequest to_request(const RouteCommand& cmd) {
  RouteRequest req;
  req.session_key = cmd.session_key;
  req.opts = cmd.opts;
  req.net_names = cmd.nets;
  req.reroute = cmd.reroute;
  req.optimize = cmd.optimize;
  req.optimize_passes = cmd.passes;
  req.optimize_budget = cmd.budget;
  req.stage = cmd.stage;
  req.trace = cmd.trace;
  if (cmd.deadline) {
    req.deadline = std::chrono::steady_clock::now() + *cmd.deadline;
  }
  return req;
}

std::string format_ok(const std::string& meta, const std::string& body) {
  std::string out = "OK " + std::to_string(body.size());
  if (!meta.empty()) {
    out += ' ';
    out += meta;
  }
  out += '\n';
  out += body;
  return out;
}

std::string format_err(const std::string& reason) {
  // The reason may echo untrusted request bytes: clamp to short printable
  // ASCII (terminal-escape and amplification defence, text_format-style)
  // and flatten whitespace so no embedded newline can fabricate frames.
  constexpr std::size_t kMaxReason = 256;
  std::string out = "ERR ";
  const std::size_t limit = std::min(reason.size(), kMaxReason);
  for (std::size_t i = 0; i < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(reason[i]);
    if (c == '\n' || c == '\r' || c == '\t') {
      out += ' ';
    } else {
      out += (c >= 0x20 && c < 0x7f) ? reason[i] : '?';
    }
  }
  if (reason.size() > limit) out += "...";
  out += '\n';
  return out;
}

std::string format_hello(std::uint64_t uptime_s) {
  std::string body;
  for (const VerbSpec& v : verb_table()) {
    body += "verb ";
    body += v.name;
    body += " args=" + std::to_string(v.min_args);
    std::string knobs;
    for (const KnobSpec& k : v.knobs) {
      if (k.reject_msg != nullptr) continue;  // rejected, not a capability
      if (!knobs.empty()) knobs += ',';
      knobs += k.key;
      if (k.required) knobs += '!';
    }
    if (!knobs.empty()) body += " knobs=" + knobs;
    body += '\n';
  }
  return format_ok(MetaBuilder()
                       .add("version", kProtocolVersion)
                       .add("verbs", verb_table().size())
                       .add("uptime_s", uptime_s)
                       .str(),
                   body);
}

std::string format_load_ok(const LayoutSession& session, bool cached) {
  return format_ok(MetaBuilder()
                       .add("session", session.key)
                       .add("cells", session.layout.cells().size())
                       .add("nets", session.layout.nets().size())
                       .add("cached", cached ? 1 : 0)
                       .str(),
                   "");
}

std::string format_load_response(const LoadResponse& resp) {
  if (!resp.ok) return format_err(resp.error);
  return format_load_ok(*resp.session, resp.cache_hit);
}

std::string exec_load(RoutingService& service, const std::string& body) {
  try {
    bool cached = false;
    const auto session = service.load(body, &cached);
    return format_load_ok(*session, cached);
  } catch (const std::exception& e) {
    return format_err(e.what());
  }
}

std::string exec_stats(RoutingService& service) {
  // The render itself is metered into the stats verb shard: STATS traffic
  // (dashboards poll it) must not hide in the global latency picture, and a
  // render that regresses shows up in the very body it produces.
  const auto begin = std::chrono::steady_clock::now();
  std::string out = format_ok("", service.stats_text());
  const auto end = std::chrono::steady_clock::now();
  service.record_verb_latency(
      VerbKind::kStats,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
              .count()));
  return out;
}

std::size_t parse_trace_count(const std::string& args) {
  const ParsedArgs pa = parse_args(verb_for(CommandKind::kTrace), args);
  if (const KnobValue* v = pa.find("n")) {
    return static_cast<std::size_t>(v->num);
  }
  return 32;
}

std::string exec_trace(RoutingService& service, std::size_t n) {
  const std::vector<SlowRecord> records = service.slow_requests(n);
  std::ostringstream body;
  for (const SlowRecord& r : records) {
    const RequestTrace& t = r.trace;
    body << "trace " << r.id << " verb=" << to_string(r.verb)
         << " session=" << r.session << " status=" << r.status
         << " total_us=" << t.total_us << " queue_us="
         << (t.dequeue_us - t.enqueue_us) << " env_us="
         << (t.env_us - t.dequeue_us) << " exec_us="
         << (t.exec_us - t.env_us) << " finish_us="
         << (t.total_us - t.exec_us);
    for (const RequestTrace::Sub& sub : t.subs) {
      body << " sub_" << sub.label << "_us=" << sub.at_us;
    }
    body << '\n';
  }
  return format_ok(MetaBuilder()
                       .add("count", records.size())
                       .add("threshold_ms", service.slow_threshold_ms())
                       .str(),
                   body.str());
}

std::string format_route_response(const RouteResponse& resp) {
  if (!resp.ok()) return format_status_err(resp.status, resp.error);
  const std::string body =
      resp.nets.empty()
          ? io::write_routes_string(resp.session->layout, resp.result)
          : io::write_routes_string(resp.session->layout, resp.result,
                                    resp.nets);
  std::string meta = MetaBuilder()
                         .add("routed", resp.result.routed)
                         .add("failed", resp.result.failed)
                         .add("wirelength", resp.result.total_wirelength)
                         .add("queue_us", resp.queue_wait.count())
                         .add("total_us", resp.latency.count())
                         .str();
  if (resp.traced) meta += resp.trace.render_meta();
  return format_ok(meta, body);
}

std::string format_pass_progress(const route::OptimizePassStats& stats) {
  std::ostringstream os;
  os << "PASS " << stats.pass << " wirelength=" << stats.wirelength
     << " overflow=" << stats.overflow << '\n';
  return os.str();
}

std::string format_optimize_response(const RouteResponse& resp) {
  if (!resp.ok()) return format_status_err(resp.status, resp.error);
  const std::string body =
      io::write_routes_string(resp.session->layout, resp.result);
  std::string meta =
      MetaBuilder()
          .add("passes", resp.passes.size())
          .add("routed", resp.result.routed)
          .add("failed", resp.result.failed)
          .add("wirelength", resp.result.total_wirelength)
          .add("overflow", resp.passes.empty() ? 0 : resp.passes.back().overflow)
          .add("queue_us", resp.queue_wait.count())
          .add("total_us", resp.latency.count())
          .str();
  if (resp.traced) meta += resp.trace.render_meta();
  return format_ok(meta, body);
}

std::string format_stage_response(const RouteResponse& resp) {
  if (!resp.ok()) return format_status_err(resp.status, resp.error);
  std::string meta = MetaBuilder()
                         .add("stage", pipeline::to_string(resp.stage->kind))
                         .add("cached", resp.stage_cached ? 1 : 0)
                         .raw(resp.stage->meta)
                         .add("queue_us", resp.queue_wait.count())
                         .add("total_us", resp.latency.count())
                         .str();
  if (resp.traced) meta += resp.trace.render_meta();
  return format_ok(meta, resp.stage->body);
}

std::string format_pin_response(const PinResponse& resp, PinRequest::Op op) {
  if (!resp.ok()) return format_status_err(resp.status, resp.error);
  MetaBuilder meta;
  meta.add("pin", resp.handle);
  switch (op) {
    case PinRequest::Op::kPin:
      meta.add("session", resp.base_key)
          .add("nets", resp.nets_total)
          .add("committed", resp.committed);
      break;
    case PinRequest::Op::kUnpin:
      meta.add("released", 1);
      break;
    case PinRequest::Op::kCommit:
      meta.add("committed", resp.committed)
          .add("routed", resp.routed)
          .add("failed", resp.failed)
          .add("wirelength", resp.wirelength)
          .add("queue_us", resp.queue_wait.count())
          .add("total_us", resp.latency.count());
      break;
    case PinRequest::Op::kReroute:
      meta.add("routed", resp.routed)
          .add("failed", resp.failed)
          .add("wirelength", resp.wirelength)
          .add("queue_us", resp.queue_wait.count())
          .add("total_us", resp.latency.count());
      break;
    case PinRequest::Op::kUncommit:
      meta.add("removed", resp.removed)
          .add("committed", resp.committed)
          .add("queue_us", resp.queue_wait.count())
          .add("total_us", resp.latency.count());
      break;
    case PinRequest::Op::kSave:
      meta.add("bytes", resp.save_bytes)
          .add("queue_us", resp.queue_wait.count())
          .add("total_us", resp.latency.count());
      break;
  }
  return format_ok(meta.str(), resp.body);
}

std::string format_gen_ok(const LayoutSession& session, bool cached,
                          GenCommand::Kind kind) {
  return format_ok(MetaBuilder()
                       .add("session", session.key)
                       .add("cells", session.layout.cells().size())
                       .add("nets", session.layout.nets().size())
                       .add("cached", cached ? 1 : 0)
                       .add("gen", to_string(kind))
                       .str(),
                   "");
}

std::string exec_gen(RoutingService& service, const GenCommand& cmd) {
  try {
    const std::string text = generate_workload_text(cmd);
    bool cached = false;
    const auto session = service.load(text, &cached);
    service.record_gen(true);
    return format_gen_ok(*session, cached, cmd.kind);
  } catch (const std::exception& e) {
    service.record_gen(false);
    return format_err(e.what());
  }
}

std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out) {
  const auto emit = [&out](const std::string& frame) {
    out << frame;
    out.flush();
  };
  // This connection's identity: gates pin ownership and is what the
  // disconnect auto-release below keys on.  (The blocking loop never
  // cancels mid-request, so the flag itself is never set here.)
  const auto owner = std::make_shared<std::atomic<bool>>(false);

  std::size_t frames = 0;
  std::string line;
  for (;;) {
    const LineRead got = read_line_capped(in, line);
    if (got == LineRead::kEof) break;
    if (got == LineRead::kTooLong) {
      ++frames;
      emit(format_err("command line exceeds " +
                      std::to_string(kMaxCommandLine) + " bytes"));
      continue;
    }
    // Parse-span origin: everything between here and submit (classify,
    // knob validation, request lowering) is the front-end's own cost and
    // is reported separately as span_parse_us.
    const auto received = std::chrono::steady_clock::now();
    const ClassifiedCommand cmd = classify_command(line);
    if (cmd.kind == CommandKind::kBlank) continue;  // keep-alive line
    ++frames;

    if (cmd.kind == CommandKind::kQuit) {
      emit(format_ok("bye", ""));
      break;
    }

    if (cmd.kind == CommandKind::kStats) {
      emit(exec_stats(service));
      continue;
    }

    if (cmd.kind == CommandKind::kHello) {
      emit(format_hello(service.uptime_s()));
      continue;
    }

    if (cmd.kind == CommandKind::kTrace) {
      try {
        emit(exec_trace(service, parse_trace_count(cmd.args)));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
      }
      continue;
    }

    if (cmd.kind == CommandKind::kLoad) {
      unsigned long long nbytes = 0;
      try {
        nbytes = parse_load_count(line);
      } catch (const std::exception& e) {
        // Without a trustworthy byte count the body length is unknown, so
        // the stream position is lost — drop the connection rather than
        // parse body bytes as commands.
        emit(format_err(std::string(e.what()) + " (connection out of sync)"));
        break;
      }
      if (nbytes > kMaxLoadBytes) {
        // The count is valid, just unacceptable: skip exactly the declared
        // body so the connection stays framed, then keep serving.
        emit(format_err("LOAD body larger than 64 MiB"));
        in.ignore(static_cast<std::streamsize>(nbytes));
        if (static_cast<unsigned long long>(in.gcount()) != nbytes) break;
        continue;
      }
      std::string body(static_cast<std::size_t>(nbytes), '\0');
      in.read(body.data(), static_cast<std::streamsize>(body.size()));
      if (static_cast<unsigned long long>(in.gcount()) != nbytes) {
        // A truncated body desynchronizes the framing; the only safe
        // recovery is to drop the connection.
        emit(format_err("LOAD body truncated (connection out of sync)"));
        break;
      }
      emit(exec_load(service, body));
      continue;
    }

    if (cmd.kind == CommandKind::kOptimize) {
      RouteRequest req;
      try {
        req = to_request(parse_optimize_command(cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      req.received = received;
      // Stream each completed pass as it lands.  The progress hook runs on
      // the worker thread while this thread is parked inside route()'s
      // future wait; the future's synchronization orders every streamed
      // write before the final frame below, and nothing else writes to
      // `out` in that window — the blocking loop serves one command at a
      // time.
      req.progress = [&emit](const route::OptimizePassStats& stats) {
        emit(format_pass_progress(stats));
      };
      emit(format_optimize_response(service.route(std::move(req))));
      continue;
    }

    if (cmd.kind == CommandKind::kDetail ||
        cmd.kind == CommandKind::kCongest ||
        cmd.kind == CommandKind::kVerify || cmd.kind == CommandKind::kSvg) {
      const pipeline::StageKind stage_kind =
          cmd.kind == CommandKind::kDetail    ? pipeline::StageKind::kDetail
          : cmd.kind == CommandKind::kCongest ? pipeline::StageKind::kCongest
          : cmd.kind == CommandKind::kVerify  ? pipeline::StageKind::kVerify
                                              : pipeline::StageKind::kSvg;
      RouteRequest req;
      try {
        req = to_request(parse_stage_command(stage_kind, cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      req.received = received;
      emit(format_stage_response(service.route(std::move(req))));
      continue;
    }

    if (cmd.kind == CommandKind::kGen) {
      GenCommand gen;
      try {
        gen = parse_gen_command(cmd.args);
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      emit(exec_gen(service, gen));
      continue;
    }

    if (cmd.kind == CommandKind::kPin || cmd.kind == CommandKind::kUnpin ||
        cmd.kind == CommandKind::kCommit ||
        cmd.kind == CommandKind::kUncommit ||
        cmd.kind == CommandKind::kSave) {
      PinRequest req;
      try {
        req = parse_pin_command(cmd.kind, cmd.args);
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      const PinRequest::Op op = req.op;
      req.owner = owner;
      emit(format_pin_response(service.pin_op(std::move(req)), op));
      continue;
    }

    if (cmd.kind == CommandKind::kRoute ||
        cmd.kind == CommandKind::kReroute) {
      RouteCommand rc;
      try {
        rc = cmd.kind == CommandKind::kRoute ? parse_route_command(cmd.args)
                                             : parse_reroute_command(cmd.args);
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      // REROUTE against a pin handle runs the rip-up on the pin's own
      // committed remainder (owner-gated, per-pin FIFO) instead of the
      // shared stateless path.
      if (cmd.kind == CommandKind::kReroute &&
          service.pins().find(rc.session_key) != nullptr) {
        PinRequest preq;
        preq.op = PinRequest::Op::kReroute;
        preq.key = rc.session_key;
        preq.nets = rc.nets;
        preq.wire_halo = rc.opts.wire_halo;
        preq.owner = owner;
        emit(format_pin_response(service.pin_op(std::move(preq)),
                                 PinRequest::Op::kReroute));
        continue;
      }
      RouteRequest req = to_request(rc);
      req.received = received;
      emit(format_route_response(service.route(std::move(req))));
      continue;
    }

    emit(format_err("unknown command '" + cmd.keyword + "'"));
  }
  service.release_pins(owner);
  return frames;
}

}  // namespace gcr::serve
