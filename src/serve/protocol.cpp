#include "serve/protocol.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"
#include "workload/padring.hpp"

namespace gcr::serve {

namespace {

/// Outcome of one bounded line read.
enum class LineRead {
  kLine,     ///< a complete (possibly empty) line, CR stripped
  kEof,      ///< no more input
  kTooLong,  ///< exceeded kMaxCommandLine; discarded up to the next LF
};

/// getline with a hard length cap: the blocking loop's defence against a
/// peer that streams bytes without ever sending `\n` (std::getline would
/// buffer all of them, bypassing the LOAD size cap).  An overlong line is
/// discarded to its terminating LF so framing survives.
LineRead read_line_capped(std::istream& in, std::string& line) {
  line.clear();
  int ch;
  while ((ch = in.get()) != std::istream::traits_type::eof()) {
    if (ch == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return LineRead::kLine;
    }
    if (line.size() >= kMaxCommandLine) {
      while ((ch = in.get()) != std::istream::traits_type::eof() &&
             ch != '\n') {
      }
      return LineRead::kTooLong;
    }
    line.push_back(static_cast<char>(ch));
  }
  if (line.empty()) return LineRead::kEof;
  if (line.back() == '\r') line.pop_back();  // trailing line without LF
  return LineRead::kLine;
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Strict non-negative integer parse with token context in the error.
unsigned long long parse_count(const std::string& tok,
                               const std::string& what) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(what + ": expected a non-negative integer, got '" +
                             tok + "'");
  }
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    throw std::runtime_error(what + ": value out of range: '" + tok + "'");
  }
}

/// Splits a `nets=` value on commas.  Empty items (leading, trailing, or
/// doubled commas) are malformed — they would silently route nothing.
std::vector<std::string> split_net_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) {
      throw std::runtime_error("ROUTE nets: empty net name in list");
    }
    out.push_back(item);
    if (comma == std::string::npos) return out;
    start = comma + 1;
  }
}

/// parse_count plus the 24-hour cap shared by deadline_ms and budget_ms:
/// std::chrono::milliseconds has a signed rep, so an uncapped ULLONG_MAX
/// count would narrow to a negative duration, and adding it to
/// steady_clock::now() overflows the clock rep (signed-overflow UB).
unsigned long long parse_duration_ms(const std::string& tok,
                                     const std::string& what) {
  const unsigned long long ms = parse_count(tok, what);
  if (ms > kMaxDeadlineMs) {
    throw std::runtime_error(what + ": at most " +
                             std::to_string(kMaxDeadlineMs) + " ms (24h)");
  }
  return ms;
}

}  // namespace

ClassifiedCommand classify_command(const std::string& line) {
  ClassifiedCommand out;
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return out;  // kBlank
  std::size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) end = line.size();
  out.keyword = line.substr(start, end - start);
  out.args = line.substr(end);
  if (out.keyword == "QUIT") {
    out.kind = CommandKind::kQuit;
  } else if (out.keyword == "STATS") {
    out.kind = CommandKind::kStats;
  } else if (out.keyword == "LOAD") {
    out.kind = CommandKind::kLoad;
  } else if (out.keyword == "ROUTE") {
    out.kind = CommandKind::kRoute;
  } else if (out.keyword == "REROUTE") {
    out.kind = CommandKind::kReroute;
  } else if (out.keyword == "OPTIMIZE") {
    out.kind = CommandKind::kOptimize;
  } else if (out.keyword == "DETAIL") {
    out.kind = CommandKind::kDetail;
  } else if (out.keyword == "CONGEST") {
    out.kind = CommandKind::kCongest;
  } else if (out.keyword == "VERIFY") {
    out.kind = CommandKind::kVerify;
  } else if (out.keyword == "SVG") {
    out.kind = CommandKind::kSvg;
  } else if (out.keyword == "GEN") {
    out.kind = CommandKind::kGen;
  } else {
    out.kind = CommandKind::kUnknown;
  }
  return out;
}

RouteCommand parse_route_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error("ROUTE needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("ROUTE option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "mode") {
      if (value == "independent") {
        cmd.opts.mode = route::NetlistMode::kIndependent;
      } else if (value == "sequential") {
        cmd.opts.mode = route::NetlistMode::kSequential;
      } else {
        throw std::runtime_error("ROUTE mode must be independent or "
                                 "sequential, got '" + value + "'");
      }
    } else if (key == "threads") {
      const unsigned long long n = parse_count(value, "ROUTE threads");
      if (n > 1024) throw std::runtime_error("ROUTE threads: at most 1024");
      cmd.opts.threads = static_cast<unsigned>(n);
    } else if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_duration_ms(value, "ROUTE deadline_ms"));
    } else if (key == "sorted") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE sorted must be 0 or 1");
      }
      cmd.opts.sorted_dispatch = value == "1";
    } else if (key == "segments") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE segments must be 0 or 1");
      }
      cmd.opts.steiner.connect_to_segments = value == "1";
    } else if (key == "nets") {
      cmd.nets = split_net_list(value);
    } else {
      throw std::runtime_error("ROUTE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

RouteCommand parse_reroute_command(const std::string& args) {
  // mode= must be rejected *before* the shared parse: the parsed options
  // cannot distinguish an explicit mode=independent from the default.
  for (const std::string& w : split_words(args)) {
    if (w.rfind("mode=", 0) == 0) {
      throw std::runtime_error(
          "REROUTE is always sequential; mode= is not accepted");
    }
  }
  RouteCommand cmd = parse_route_command(args);
  if (cmd.nets.empty()) {
    throw std::runtime_error(
        "REROUTE needs nets=<name>[,<name>]... (the rip-up set)");
  }
  cmd.opts.mode = route::NetlistMode::kSequential;
  cmd.reroute = true;
  return cmd;
}

RouteCommand parse_optimize_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error("OPTIMIZE needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  cmd.optimize = true;
  cmd.opts.mode = route::NetlistMode::kSequential;
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("OPTIMIZE option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "passes") {
      const unsigned long long n = parse_count(value, "OPTIMIZE passes");
      if (n == 0 || n > 1024) {
        throw std::runtime_error("OPTIMIZE passes: must be 1..1024");
      }
      cmd.passes = static_cast<std::size_t>(n);
    } else if (key == "budget_ms") {
      cmd.budget = std::chrono::milliseconds(
          parse_duration_ms(value, "OPTIMIZE budget_ms"));
    } else if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_duration_ms(value, "OPTIMIZE deadline_ms"));
    } else if (key == "segments") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("OPTIMIZE segments must be 0 or 1");
      }
      cmd.opts.steiner.connect_to_segments = value == "1";
    } else {
      // mode=, nets=, threads=, sorted= land here deliberately: the engine
      // is sequential whole-netlist by definition.
      throw std::runtime_error("OPTIMIZE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

RouteCommand parse_stage_command(pipeline::StageKind kind,
                                 const std::string& args) {
  // Protocol-side verb name for diagnostics (the uppercase wire keyword).
  const auto verb = [&]() -> std::string {
    switch (kind) {
      case pipeline::StageKind::kDetail: return "DETAIL";
      case pipeline::StageKind::kCongest: return "CONGEST";
      case pipeline::StageKind::kVerify: return "VERIFY";
      case pipeline::StageKind::kSvg: return "SVG";
    }
    return "?";
  }();

  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error(verb + " needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  pipeline::StageOptions sopts;
  sopts.kind = kind;

  const auto parse_coord = [&](const std::string& value,
                               const std::string& what) {
    const unsigned long long n = parse_count(value, what);
    if (n == 0 || n > 1'000'000) {
      throw std::runtime_error(what + ": must be 1..1000000");
    }
    return static_cast<geom::Coord>(n);
  };
  const auto parse_bool = [&](const std::string& value,
                              const std::string& what) {
    if (value != "0" && value != "1") {
      throw std::runtime_error(what + " must be 0 or 1");
    }
    return value == "1";
  };

  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error(verb + " option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_duration_ms(value, verb + " deadline_ms"));
    } else if (kind == pipeline::StageKind::kDetail && key == "window") {
      sopts.channel_window = parse_coord(value, verb + " window");
    } else if (kind == pipeline::StageKind::kDetail && key == "pitch") {
      sopts.track_pitch = parse_coord(value, verb + " pitch");
    } else if (kind == pipeline::StageKind::kCongest && key == "penalty") {
      const unsigned long long n = parse_count(value, verb + " penalty");
      if (n > 1'000'000'000) {
        throw std::runtime_error(verb + " penalty: at most 1000000000");
      }
      sopts.penalty_dbu = static_cast<geom::Cost>(n);
    } else if (kind == pipeline::StageKind::kCongest && key == "iterations") {
      const unsigned long long n = parse_count(value, verb + " iterations");
      if (n == 0 || n > 64) {
        throw std::runtime_error(verb + " iterations: must be 1..64");
      }
      sopts.max_iterations = static_cast<std::size_t>(n);
    } else if (kind == pipeline::StageKind::kCongest && key == "wire_pitch") {
      sopts.wire_pitch = parse_coord(value, verb + " wire_pitch");
    } else if (kind == pipeline::StageKind::kCongest && key == "max_gap") {
      const unsigned long long n = parse_count(value, verb + " max_gap");
      if (n > 1'000'000) {
        throw std::runtime_error(verb + " max_gap: at most 1000000");
      }
      sopts.max_gap = static_cast<geom::Coord>(n);
    } else if (kind == pipeline::StageKind::kVerify && key == "all_routed") {
      sopts.require_all_routed = parse_bool(value, verb + " all_routed");
    } else if (kind == pipeline::StageKind::kSvg && key == "scale") {
      // The charset filter pins the grammar (no signs, exponents, inf/nan,
      // whitespace); the pos check then rejects tokens std::stod would
      // silently truncate to a numeric prefix, like "1.2.3".
      if (value.empty() ||
          value.find_first_not_of("0123456789.") != std::string::npos) {
        throw std::runtime_error(verb + " scale: expected a number, got '" +
                                 value + "'");
      }
      double s = 0.0;
      std::size_t pos = 0;
      try {
        s = std::stod(value, &pos);
      } catch (const std::out_of_range&) {
        throw std::runtime_error(verb + " scale: value out of range");
      } catch (const std::exception&) {
        throw std::runtime_error(verb + " scale: expected a number, got '" +
                                 value + "'");
      }
      if (pos != value.size()) {
        throw std::runtime_error(verb + " scale: expected a number, got '" +
                                 value + "'");
      }
      if (!(s >= 0.0625 && s <= 64.0)) {
        throw std::runtime_error(verb + " scale: must be in [0.0625, 64]");
      }
      sopts.scale = s;
    } else if (kind == pipeline::StageKind::kSvg && key == "pins") {
      sopts.draw_pins = parse_bool(value, verb + " pins");
    } else if (kind == pipeline::StageKind::kSvg && key == "names") {
      sopts.draw_cell_names = parse_bool(value, verb + " names");
    } else {
      throw std::runtime_error(verb + ": unknown option '" + key + "'");
    }
  }
  cmd.stage = sopts;
  return cmd;
}

const char* to_string(GenCommand::Kind k) noexcept {
  switch (k) {
    case GenCommand::Kind::kFloorplan: return "floorplan";
    case GenCommand::Kind::kStandard: return "standard";
    case GenCommand::Kind::kPadring: return "padring";
  }
  return "?";
}

GenCommand parse_gen_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error(
        "GEN needs a kind (floorplan, standard, or padring)");
  }
  GenCommand cmd;
  if (words[0] == "floorplan") {
    cmd.kind = GenCommand::Kind::kFloorplan;
  } else if (words[0] == "standard") {
    cmd.kind = GenCommand::Kind::kStandard;
  } else if (words[0] == "padring") {
    cmd.kind = GenCommand::Kind::kPadring;
  } else {
    throw std::runtime_error("GEN kind must be floorplan, standard, or "
                             "padring, got '" + words[0] + "'");
  }
  bool have_seed = false;
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("GEN option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "seed") {
      cmd.seed = parse_count(value, "GEN seed");
      have_seed = true;
    } else if (key == "cells") {
      const unsigned long long n = parse_count(value, "GEN cells");
      if (n == 0 || n > 4096) {
        throw std::runtime_error("GEN cells: must be 1..4096");
      }
      cmd.cells = static_cast<std::size_t>(n);
    } else if (key == "extent") {
      const unsigned long long n = parse_count(value, "GEN extent");
      if (n < 64 || n > 1'048'576) {
        throw std::runtime_error("GEN extent: must be 64..1048576");
      }
      cmd.extent = static_cast<geom::Coord>(n);
    } else if (key == "nets") {
      const unsigned long long n = parse_count(value, "GEN nets");
      if (n > 65'536) throw std::runtime_error("GEN nets: at most 65536");
      cmd.nets = static_cast<std::size_t>(n);
    } else if (key == "pads") {
      const unsigned long long n = parse_count(value, "GEN pads");
      if (n == 0 || n > 256) {
        throw std::runtime_error("GEN pads: must be 1..256");
      }
      cmd.pads = static_cast<std::size_t>(n);
    } else {
      throw std::runtime_error("GEN: unknown option '" + key + "'");
    }
  }
  // seed= is required: a defaulted seed would silently alias every
  // unseeded GEN onto one session, which is never what a load test wants.
  if (!have_seed) throw std::runtime_error("GEN needs seed=<n>");
  return cmd;
}

std::string generate_workload_text(const GenCommand& cmd) {
  switch (cmd.kind) {
    case GenCommand::Kind::kFloorplan: {
      workload::FloorplanOptions fp;
      fp.cell_count = cmd.cells;
      fp.boundary = geom::Rect{0, 0, cmd.extent, cmd.extent};
      fp.seed = cmd.seed;
      return io::write_layout_string(workload::random_floorplan(fp));
    }
    case GenCommand::Kind::kStandard:
      return io::write_layout_string(
          workload::standard_workload(cmd.cells, cmd.extent, cmd.nets,
                                      cmd.seed));
    case GenCommand::Kind::kPadring: {
      layout::Layout lay = workload::standard_workload(
          cmd.cells, cmd.extent, cmd.nets, cmd.seed);
      workload::PadRingOptions pr;
      pr.pads_per_side = cmd.pads;
      pr.seed = cmd.seed + 3;  // seed..seed+2 are standard_workload's
      workload::add_pad_ring(lay, pr);
      return io::write_layout_string(lay);
    }
  }
  throw std::runtime_error("GEN: unhandled kind");
}

unsigned long long parse_load_count(const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.size() != 2) {
    throw std::runtime_error("LOAD needs exactly one byte count");
  }
  return parse_count(words[1], "LOAD byte count");
}

RouteRequest to_request(const RouteCommand& cmd) {
  RouteRequest req;
  req.session_key = cmd.session_key;
  req.opts = cmd.opts;
  req.net_names = cmd.nets;
  req.reroute = cmd.reroute;
  req.optimize = cmd.optimize;
  req.optimize_passes = cmd.passes;
  req.optimize_budget = cmd.budget;
  req.stage = cmd.stage;
  if (cmd.deadline) {
    req.deadline = std::chrono::steady_clock::now() + *cmd.deadline;
  }
  return req;
}

std::string format_ok(const std::string& meta, const std::string& body) {
  std::string out = "OK " + std::to_string(body.size());
  if (!meta.empty()) {
    out += ' ';
    out += meta;
  }
  out += '\n';
  out += body;
  return out;
}

std::string format_err(const std::string& reason) {
  // The reason may echo untrusted request bytes: clamp to short printable
  // ASCII (terminal-escape and amplification defence, text_format-style)
  // and flatten whitespace so no embedded newline can fabricate frames.
  constexpr std::size_t kMaxReason = 256;
  std::string out = "ERR ";
  const std::size_t limit = std::min(reason.size(), kMaxReason);
  for (std::size_t i = 0; i < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(reason[i]);
    if (c == '\n' || c == '\r' || c == '\t') {
      out += ' ';
    } else {
      out += (c >= 0x20 && c < 0x7f) ? reason[i] : '?';
    }
  }
  if (reason.size() > limit) out += "...";
  out += '\n';
  return out;
}

std::string format_load_ok(const LayoutSession& session, bool cached) {
  std::ostringstream meta;
  meta << "session " << session.key << " cells "
       << session.layout.cells().size() << " nets "
       << session.layout.nets().size() << " cached " << (cached ? 1 : 0);
  return format_ok(meta.str(), "");
}

std::string format_load_response(const LoadResponse& resp) {
  if (!resp.ok) return format_err(resp.error);
  return format_load_ok(*resp.session, resp.cache_hit);
}

std::string exec_load(RoutingService& service, const std::string& body) {
  try {
    bool cached = false;
    const auto session = service.load(body, &cached);
    return format_load_ok(*session, cached);
  } catch (const std::exception& e) {
    return format_err(e.what());
  }
}

std::string exec_stats(RoutingService& service) {
  return format_ok("", service.stats_text());
}

std::string format_route_response(const RouteResponse& resp) {
  if (!resp.ok()) {
    return format_err(resp.error.empty()
                          ? to_string(resp.status)
                          : std::string(to_string(resp.status)) + ": " +
                                resp.error);
  }
  const std::string body =
      resp.nets.empty()
          ? io::write_routes_string(resp.session->layout, resp.result)
          : io::write_routes_string(resp.session->layout, resp.result,
                                    resp.nets);
  std::ostringstream meta;
  meta << "routed " << resp.result.routed << " failed " << resp.result.failed
       << " wirelength " << resp.result.total_wirelength << " queue_us "
       << resp.queue_wait.count() << " total_us " << resp.latency.count();
  return format_ok(meta.str(), body);
}

std::string format_pass_progress(const route::OptimizePassStats& stats) {
  std::ostringstream os;
  os << "PASS " << stats.pass << " wirelength=" << stats.wirelength
     << " overflow=" << stats.overflow << '\n';
  return os.str();
}

std::string format_optimize_response(const RouteResponse& resp) {
  if (!resp.ok()) {
    return format_err(resp.error.empty()
                          ? to_string(resp.status)
                          : std::string(to_string(resp.status)) + ": " +
                                resp.error);
  }
  const std::string body =
      io::write_routes_string(resp.session->layout, resp.result);
  std::ostringstream meta;
  meta << "passes " << resp.passes.size() << " routed " << resp.result.routed
       << " failed " << resp.result.failed << " wirelength "
       << resp.result.total_wirelength << " overflow "
       << (resp.passes.empty() ? 0 : resp.passes.back().overflow)
       << " queue_us " << resp.queue_wait.count() << " total_us "
       << resp.latency.count();
  return format_ok(meta.str(), body);
}

std::string format_stage_response(const RouteResponse& resp) {
  if (!resp.ok()) {
    return format_err(resp.error.empty()
                          ? to_string(resp.status)
                          : std::string(to_string(resp.status)) + ": " +
                                resp.error);
  }
  std::ostringstream meta;
  meta << "stage " << pipeline::to_string(resp.stage->kind) << " cached "
       << (resp.stage_cached ? 1 : 0);
  if (!resp.stage->meta.empty()) meta << ' ' << resp.stage->meta;
  meta << " queue_us " << resp.queue_wait.count() << " total_us "
       << resp.latency.count();
  return format_ok(meta.str(), resp.stage->body);
}

std::string format_gen_ok(const LayoutSession& session, bool cached,
                          GenCommand::Kind kind) {
  std::ostringstream meta;
  meta << "session " << session.key << " cells "
       << session.layout.cells().size() << " nets "
       << session.layout.nets().size() << " cached " << (cached ? 1 : 0)
       << " gen " << to_string(kind);
  return format_ok(meta.str(), "");
}

std::string exec_gen(RoutingService& service, const GenCommand& cmd) {
  try {
    const std::string text = generate_workload_text(cmd);
    bool cached = false;
    const auto session = service.load(text, &cached);
    service.record_gen(true);
    return format_gen_ok(*session, cached, cmd.kind);
  } catch (const std::exception& e) {
    service.record_gen(false);
    return format_err(e.what());
  }
}

std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out) {
  const auto emit = [&out](const std::string& frame) {
    out << frame;
    out.flush();
  };

  std::size_t frames = 0;
  std::string line;
  for (;;) {
    const LineRead got = read_line_capped(in, line);
    if (got == LineRead::kEof) break;
    if (got == LineRead::kTooLong) {
      ++frames;
      emit(format_err("command line exceeds " +
                      std::to_string(kMaxCommandLine) + " bytes"));
      continue;
    }
    const ClassifiedCommand cmd = classify_command(line);
    if (cmd.kind == CommandKind::kBlank) continue;  // keep-alive line
    ++frames;

    if (cmd.kind == CommandKind::kQuit) {
      emit(format_ok("bye", ""));
      break;
    }

    if (cmd.kind == CommandKind::kStats) {
      emit(exec_stats(service));
      continue;
    }

    if (cmd.kind == CommandKind::kLoad) {
      unsigned long long nbytes = 0;
      try {
        nbytes = parse_load_count(line);
      } catch (const std::exception& e) {
        // Without a trustworthy byte count the body length is unknown, so
        // the stream position is lost — drop the connection rather than
        // parse body bytes as commands.
        emit(format_err(std::string(e.what()) + " (connection out of sync)"));
        break;
      }
      if (nbytes > kMaxLoadBytes) {
        // The count is valid, just unacceptable: skip exactly the declared
        // body so the connection stays framed, then keep serving.
        emit(format_err("LOAD body larger than 64 MiB"));
        in.ignore(static_cast<std::streamsize>(nbytes));
        if (static_cast<unsigned long long>(in.gcount()) != nbytes) break;
        continue;
      }
      std::string body(static_cast<std::size_t>(nbytes), '\0');
      in.read(body.data(), static_cast<std::streamsize>(body.size()));
      if (static_cast<unsigned long long>(in.gcount()) != nbytes) {
        // A truncated body desynchronizes the framing; the only safe
        // recovery is to drop the connection.
        emit(format_err("LOAD body truncated (connection out of sync)"));
        break;
      }
      emit(exec_load(service, body));
      continue;
    }

    if (cmd.kind == CommandKind::kOptimize) {
      RouteRequest req;
      try {
        req = to_request(parse_optimize_command(cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      // Stream each completed pass as it lands.  The progress hook runs on
      // the worker thread while this thread is parked inside route()'s
      // future wait; the future's synchronization orders every streamed
      // write before the final frame below, and nothing else writes to
      // `out` in that window — the blocking loop serves one command at a
      // time.
      req.progress = [&emit](const route::OptimizePassStats& stats) {
        emit(format_pass_progress(stats));
      };
      emit(format_optimize_response(service.route(std::move(req))));
      continue;
    }

    if (cmd.kind == CommandKind::kDetail ||
        cmd.kind == CommandKind::kCongest ||
        cmd.kind == CommandKind::kVerify || cmd.kind == CommandKind::kSvg) {
      const pipeline::StageKind stage_kind =
          cmd.kind == CommandKind::kDetail    ? pipeline::StageKind::kDetail
          : cmd.kind == CommandKind::kCongest ? pipeline::StageKind::kCongest
          : cmd.kind == CommandKind::kVerify  ? pipeline::StageKind::kVerify
                                              : pipeline::StageKind::kSvg;
      RouteRequest req;
      try {
        req = to_request(parse_stage_command(stage_kind, cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      emit(format_stage_response(service.route(std::move(req))));
      continue;
    }

    if (cmd.kind == CommandKind::kGen) {
      GenCommand gen;
      try {
        gen = parse_gen_command(cmd.args);
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      emit(exec_gen(service, gen));
      continue;
    }

    if (cmd.kind == CommandKind::kRoute ||
        cmd.kind == CommandKind::kReroute) {
      RouteRequest req;
      try {
        req = to_request(cmd.kind == CommandKind::kRoute
                             ? parse_route_command(cmd.args)
                             : parse_reroute_command(cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      emit(format_route_response(service.route(std::move(req))));
      continue;
    }

    emit(format_err("unknown command '" + cmd.keyword + "'"));
  }
  return frames;
}

}  // namespace gcr::serve
