#include "serve/protocol.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "io/route_dump.hpp"

namespace gcr::serve {

namespace {

/// Outcome of one bounded line read.
enum class LineRead {
  kLine,     ///< a complete (possibly empty) line, CR stripped
  kEof,      ///< no more input
  kTooLong,  ///< exceeded kMaxCommandLine; discarded up to the next LF
};

/// getline with a hard length cap: the blocking loop's defence against a
/// peer that streams bytes without ever sending `\n` (std::getline would
/// buffer all of them, bypassing the LOAD size cap).  An overlong line is
/// discarded to its terminating LF so framing survives.
LineRead read_line_capped(std::istream& in, std::string& line) {
  line.clear();
  int ch;
  while ((ch = in.get()) != std::istream::traits_type::eof()) {
    if (ch == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return LineRead::kLine;
    }
    if (line.size() >= kMaxCommandLine) {
      while ((ch = in.get()) != std::istream::traits_type::eof() &&
             ch != '\n') {
      }
      return LineRead::kTooLong;
    }
    line.push_back(static_cast<char>(ch));
  }
  if (line.empty()) return LineRead::kEof;
  if (line.back() == '\r') line.pop_back();  // trailing line without LF
  return LineRead::kLine;
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Strict non-negative integer parse with token context in the error.
unsigned long long parse_count(const std::string& tok,
                               const std::string& what) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(what + ": expected a non-negative integer, got '" +
                             tok + "'");
  }
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    throw std::runtime_error(what + ": value out of range: '" + tok + "'");
  }
}

/// Splits a `nets=` value on commas.  Empty items (leading, trailing, or
/// doubled commas) are malformed — they would silently route nothing.
std::vector<std::string> split_net_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) {
      throw std::runtime_error("ROUTE nets: empty net name in list");
    }
    out.push_back(item);
    if (comma == std::string::npos) return out;
    start = comma + 1;
  }
}

/// parse_count plus the 24-hour cap shared by deadline_ms and budget_ms:
/// std::chrono::milliseconds has a signed rep, so an uncapped ULLONG_MAX
/// count would narrow to a negative duration, and adding it to
/// steady_clock::now() overflows the clock rep (signed-overflow UB).
unsigned long long parse_duration_ms(const std::string& tok,
                                     const std::string& what) {
  const unsigned long long ms = parse_count(tok, what);
  if (ms > kMaxDeadlineMs) {
    throw std::runtime_error(what + ": at most " +
                             std::to_string(kMaxDeadlineMs) + " ms (24h)");
  }
  return ms;
}

}  // namespace

ClassifiedCommand classify_command(const std::string& line) {
  ClassifiedCommand out;
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return out;  // kBlank
  std::size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) end = line.size();
  out.keyword = line.substr(start, end - start);
  out.args = line.substr(end);
  if (out.keyword == "QUIT") {
    out.kind = CommandKind::kQuit;
  } else if (out.keyword == "STATS") {
    out.kind = CommandKind::kStats;
  } else if (out.keyword == "LOAD") {
    out.kind = CommandKind::kLoad;
  } else if (out.keyword == "ROUTE") {
    out.kind = CommandKind::kRoute;
  } else if (out.keyword == "REROUTE") {
    out.kind = CommandKind::kReroute;
  } else if (out.keyword == "OPTIMIZE") {
    out.kind = CommandKind::kOptimize;
  } else {
    out.kind = CommandKind::kUnknown;
  }
  return out;
}

RouteCommand parse_route_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error("ROUTE needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("ROUTE option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "mode") {
      if (value == "independent") {
        cmd.opts.mode = route::NetlistMode::kIndependent;
      } else if (value == "sequential") {
        cmd.opts.mode = route::NetlistMode::kSequential;
      } else {
        throw std::runtime_error("ROUTE mode must be independent or "
                                 "sequential, got '" + value + "'");
      }
    } else if (key == "threads") {
      const unsigned long long n = parse_count(value, "ROUTE threads");
      if (n > 1024) throw std::runtime_error("ROUTE threads: at most 1024");
      cmd.opts.threads = static_cast<unsigned>(n);
    } else if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_duration_ms(value, "ROUTE deadline_ms"));
    } else if (key == "sorted") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE sorted must be 0 or 1");
      }
      cmd.opts.sorted_dispatch = value == "1";
    } else if (key == "segments") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE segments must be 0 or 1");
      }
      cmd.opts.steiner.connect_to_segments = value == "1";
    } else if (key == "nets") {
      cmd.nets = split_net_list(value);
    } else {
      throw std::runtime_error("ROUTE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

RouteCommand parse_reroute_command(const std::string& args) {
  // mode= must be rejected *before* the shared parse: the parsed options
  // cannot distinguish an explicit mode=independent from the default.
  for (const std::string& w : split_words(args)) {
    if (w.rfind("mode=", 0) == 0) {
      throw std::runtime_error(
          "REROUTE is always sequential; mode= is not accepted");
    }
  }
  RouteCommand cmd = parse_route_command(args);
  if (cmd.nets.empty()) {
    throw std::runtime_error(
        "REROUTE needs nets=<name>[,<name>]... (the rip-up set)");
  }
  cmd.opts.mode = route::NetlistMode::kSequential;
  cmd.reroute = true;
  return cmd;
}

RouteCommand parse_optimize_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error("OPTIMIZE needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  cmd.optimize = true;
  cmd.opts.mode = route::NetlistMode::kSequential;
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("OPTIMIZE option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "passes") {
      const unsigned long long n = parse_count(value, "OPTIMIZE passes");
      if (n == 0 || n > 1024) {
        throw std::runtime_error("OPTIMIZE passes: must be 1..1024");
      }
      cmd.passes = static_cast<std::size_t>(n);
    } else if (key == "budget_ms") {
      cmd.budget = std::chrono::milliseconds(
          parse_duration_ms(value, "OPTIMIZE budget_ms"));
    } else if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_duration_ms(value, "OPTIMIZE deadline_ms"));
    } else if (key == "segments") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("OPTIMIZE segments must be 0 or 1");
      }
      cmd.opts.steiner.connect_to_segments = value == "1";
    } else {
      // mode=, nets=, threads=, sorted= land here deliberately: the engine
      // is sequential whole-netlist by definition.
      throw std::runtime_error("OPTIMIZE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

unsigned long long parse_load_count(const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.size() != 2) {
    throw std::runtime_error("LOAD needs exactly one byte count");
  }
  return parse_count(words[1], "LOAD byte count");
}

RouteRequest to_request(const RouteCommand& cmd) {
  RouteRequest req;
  req.session_key = cmd.session_key;
  req.opts = cmd.opts;
  req.net_names = cmd.nets;
  req.reroute = cmd.reroute;
  req.optimize = cmd.optimize;
  req.optimize_passes = cmd.passes;
  req.optimize_budget = cmd.budget;
  if (cmd.deadline) {
    req.deadline = std::chrono::steady_clock::now() + *cmd.deadline;
  }
  return req;
}

std::string format_ok(const std::string& meta, const std::string& body) {
  std::string out = "OK " + std::to_string(body.size());
  if (!meta.empty()) {
    out += ' ';
    out += meta;
  }
  out += '\n';
  out += body;
  return out;
}

std::string format_err(const std::string& reason) {
  // The reason may echo untrusted request bytes: clamp to short printable
  // ASCII (terminal-escape and amplification defence, text_format-style)
  // and flatten whitespace so no embedded newline can fabricate frames.
  constexpr std::size_t kMaxReason = 256;
  std::string out = "ERR ";
  const std::size_t limit = std::min(reason.size(), kMaxReason);
  for (std::size_t i = 0; i < limit; ++i) {
    const unsigned char c = static_cast<unsigned char>(reason[i]);
    if (c == '\n' || c == '\r' || c == '\t') {
      out += ' ';
    } else {
      out += (c >= 0x20 && c < 0x7f) ? reason[i] : '?';
    }
  }
  if (reason.size() > limit) out += "...";
  out += '\n';
  return out;
}

std::string format_load_ok(const LayoutSession& session, bool cached) {
  std::ostringstream meta;
  meta << "session " << session.key << " cells "
       << session.layout.cells().size() << " nets "
       << session.layout.nets().size() << " cached " << (cached ? 1 : 0);
  return format_ok(meta.str(), "");
}

std::string format_load_response(const LoadResponse& resp) {
  if (!resp.ok) return format_err(resp.error);
  return format_load_ok(*resp.session, resp.cache_hit);
}

std::string exec_load(RoutingService& service, const std::string& body) {
  try {
    bool cached = false;
    const auto session = service.load(body, &cached);
    return format_load_ok(*session, cached);
  } catch (const std::exception& e) {
    return format_err(e.what());
  }
}

std::string exec_stats(RoutingService& service) {
  return format_ok("", service.stats_text());
}

std::string format_route_response(const RouteResponse& resp) {
  if (!resp.ok()) {
    return format_err(resp.error.empty()
                          ? to_string(resp.status)
                          : std::string(to_string(resp.status)) + ": " +
                                resp.error);
  }
  const std::string body =
      resp.nets.empty()
          ? io::write_routes_string(resp.session->layout, resp.result)
          : io::write_routes_string(resp.session->layout, resp.result,
                                    resp.nets);
  std::ostringstream meta;
  meta << "routed " << resp.result.routed << " failed " << resp.result.failed
       << " wirelength " << resp.result.total_wirelength << " queue_us "
       << resp.queue_wait.count() << " total_us " << resp.latency.count();
  return format_ok(meta.str(), body);
}

std::string format_pass_progress(const route::OptimizePassStats& stats) {
  std::ostringstream os;
  os << "PASS " << stats.pass << " wirelength=" << stats.wirelength
     << " overflow=" << stats.overflow << '\n';
  return os.str();
}

std::string format_optimize_response(const RouteResponse& resp) {
  if (!resp.ok()) {
    return format_err(resp.error.empty()
                          ? to_string(resp.status)
                          : std::string(to_string(resp.status)) + ": " +
                                resp.error);
  }
  const std::string body =
      io::write_routes_string(resp.session->layout, resp.result);
  std::ostringstream meta;
  meta << "passes " << resp.passes.size() << " routed " << resp.result.routed
       << " failed " << resp.result.failed << " wirelength "
       << resp.result.total_wirelength << " overflow "
       << (resp.passes.empty() ? 0 : resp.passes.back().overflow)
       << " queue_us " << resp.queue_wait.count() << " total_us "
       << resp.latency.count();
  return format_ok(meta.str(), body);
}

std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out) {
  const auto emit = [&out](const std::string& frame) {
    out << frame;
    out.flush();
  };

  std::size_t frames = 0;
  std::string line;
  for (;;) {
    const LineRead got = read_line_capped(in, line);
    if (got == LineRead::kEof) break;
    if (got == LineRead::kTooLong) {
      ++frames;
      emit(format_err("command line exceeds " +
                      std::to_string(kMaxCommandLine) + " bytes"));
      continue;
    }
    const ClassifiedCommand cmd = classify_command(line);
    if (cmd.kind == CommandKind::kBlank) continue;  // keep-alive line
    ++frames;

    if (cmd.kind == CommandKind::kQuit) {
      emit(format_ok("bye", ""));
      break;
    }

    if (cmd.kind == CommandKind::kStats) {
      emit(exec_stats(service));
      continue;
    }

    if (cmd.kind == CommandKind::kLoad) {
      unsigned long long nbytes = 0;
      try {
        nbytes = parse_load_count(line);
      } catch (const std::exception& e) {
        // Without a trustworthy byte count the body length is unknown, so
        // the stream position is lost — drop the connection rather than
        // parse body bytes as commands.
        emit(format_err(std::string(e.what()) + " (connection out of sync)"));
        break;
      }
      if (nbytes > kMaxLoadBytes) {
        // The count is valid, just unacceptable: skip exactly the declared
        // body so the connection stays framed, then keep serving.
        emit(format_err("LOAD body larger than 64 MiB"));
        in.ignore(static_cast<std::streamsize>(nbytes));
        if (static_cast<unsigned long long>(in.gcount()) != nbytes) break;
        continue;
      }
      std::string body(static_cast<std::size_t>(nbytes), '\0');
      in.read(body.data(), static_cast<std::streamsize>(body.size()));
      if (static_cast<unsigned long long>(in.gcount()) != nbytes) {
        // A truncated body desynchronizes the framing; the only safe
        // recovery is to drop the connection.
        emit(format_err("LOAD body truncated (connection out of sync)"));
        break;
      }
      emit(exec_load(service, body));
      continue;
    }

    if (cmd.kind == CommandKind::kOptimize) {
      RouteRequest req;
      try {
        req = to_request(parse_optimize_command(cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      // Stream each completed pass as it lands.  The progress hook runs on
      // the worker thread while this thread is parked inside route()'s
      // future wait; the future's synchronization orders every streamed
      // write before the final frame below, and nothing else writes to
      // `out` in that window — the blocking loop serves one command at a
      // time.
      req.progress = [&emit](const route::OptimizePassStats& stats) {
        emit(format_pass_progress(stats));
      };
      emit(format_optimize_response(service.route(std::move(req))));
      continue;
    }

    if (cmd.kind == CommandKind::kRoute ||
        cmd.kind == CommandKind::kReroute) {
      RouteRequest req;
      try {
        req = to_request(cmd.kind == CommandKind::kRoute
                             ? parse_route_command(cmd.args)
                             : parse_reroute_command(cmd.args));
      } catch (const std::exception& e) {
        emit(format_err(e.what()));
        continue;
      }
      emit(format_route_response(service.route(std::move(req))));
      continue;
    }

    emit(format_err("unknown command '" + cmd.keyword + "'"));
  }
  return frames;
}

}  // namespace gcr::serve
