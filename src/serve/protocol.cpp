#include "serve/protocol.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/route_dump.hpp"

namespace gcr::serve {

namespace {

/// getline that strips a trailing CR, so CRLF peers work unchanged.
bool read_line(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Strict non-negative integer parse with token context in the error.
unsigned long long parse_count(const std::string& tok,
                               const std::string& what) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(what + ": expected a non-negative integer, got '" +
                             tok + "'");
  }
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    throw std::runtime_error(what + ": value out of range: '" + tok + "'");
  }
}

}  // namespace

RouteCommand parse_route_command(const std::string& args) {
  const std::vector<std::string> words = split_words(args);
  if (words.empty()) {
    throw std::runtime_error("ROUTE needs a session key");
  }
  RouteCommand cmd;
  cmd.session_key = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    const std::string& w = words[i];
    const std::size_t eq = w.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == w.size()) {
      throw std::runtime_error("ROUTE option '" + w +
                               "' is not of the form key=value");
    }
    const std::string key = w.substr(0, eq);
    const std::string value = w.substr(eq + 1);
    if (key == "mode") {
      if (value == "independent") {
        cmd.opts.mode = route::NetlistMode::kIndependent;
      } else if (value == "sequential") {
        cmd.opts.mode = route::NetlistMode::kSequential;
      } else {
        throw std::runtime_error("ROUTE mode must be independent or "
                                 "sequential, got '" + value + "'");
      }
    } else if (key == "threads") {
      const unsigned long long n = parse_count(value, "ROUTE threads");
      if (n > 1024) throw std::runtime_error("ROUTE threads: at most 1024");
      cmd.opts.threads = static_cast<unsigned>(n);
    } else if (key == "deadline_ms") {
      cmd.deadline = std::chrono::milliseconds(
          parse_count(value, "ROUTE deadline_ms"));
    } else if (key == "sorted") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE sorted must be 0 or 1");
      }
      cmd.opts.sorted_dispatch = value == "1";
    } else if (key == "segments") {
      if (value != "0" && value != "1") {
        throw std::runtime_error("ROUTE segments must be 0 or 1");
      }
      cmd.opts.steiner.connect_to_segments = value == "1";
    } else {
      throw std::runtime_error("ROUTE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

void write_ok(std::ostream& out, const std::string& meta,
              const std::string& body) {
  out << "OK " << body.size();
  if (!meta.empty()) out << ' ' << meta;
  out << '\n' << body;
  out.flush();
}

void write_err(std::ostream& out, const std::string& reason) {
  // Frame integrity: a reason with embedded newlines would fabricate extra
  // protocol lines, so flatten them.
  std::string flat = reason;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out << "ERR " << flat << '\n';
  out.flush();
}

std::size_t serve_connection(RoutingService& service, std::istream& in,
                             std::ostream& out) {
  std::size_t frames = 0;
  std::string line;
  while (read_line(in, line)) {
    const std::vector<std::string> words = split_words(line);
    if (words.empty()) continue;  // blank keep-alive line
    ++frames;
    const std::string& kw = words[0];

    if (kw == "QUIT") {
      write_ok(out, "bye", "");
      break;
    }

    if (kw == "STATS") {
      write_ok(out, "", service.stats_text());
      continue;
    }

    if (kw == "LOAD") {
      unsigned long long nbytes = 0;
      try {
        if (words.size() != 2) {
          throw std::runtime_error("LOAD needs exactly one byte count");
        }
        nbytes = parse_count(words[1], "LOAD byte count");
      } catch (const std::exception& e) {
        // Without a trustworthy byte count the body length is unknown, so
        // the stream position is lost — drop the connection rather than
        // parse body bytes as commands.
        write_err(out, std::string(e.what()) + " (connection out of sync)");
        break;
      }
      if (nbytes > (64ull << 20)) {
        // The count is valid, just unacceptable: skip exactly the declared
        // body so the connection stays framed, then keep serving.
        write_err(out, "LOAD body larger than 64 MiB");
        in.ignore(static_cast<std::streamsize>(nbytes));
        if (static_cast<unsigned long long>(in.gcount()) != nbytes) break;
        continue;
      }
      std::string body(static_cast<std::size_t>(nbytes), '\0');
      in.read(body.data(), static_cast<std::streamsize>(body.size()));
      if (static_cast<unsigned long long>(in.gcount()) != nbytes) {
        // A truncated body desynchronizes the framing; the only safe
        // recovery is to drop the connection.
        write_err(out, "LOAD body truncated (connection out of sync)");
        break;
      }
      try {
        bool cached = false;
        const auto session = service.load(body, &cached);
        std::ostringstream meta;
        meta << "session " << session->key << " cells "
             << session->layout.cells().size() << " nets "
             << session->layout.nets().size() << " cached " << (cached ? 1 : 0);
        write_ok(out, meta.str(), "");
      } catch (const std::exception& e) {
        write_err(out, e.what());
      }
      continue;
    }

    if (kw == "ROUTE") {
      RouteRequest req;
      try {
        const std::size_t args_at = line.find("ROUTE") + 5;
        const RouteCommand cmd = parse_route_command(line.substr(args_at));
        req.session_key = cmd.session_key;
        req.opts = cmd.opts;
        if (cmd.deadline) {
          req.deadline = std::chrono::steady_clock::now() + *cmd.deadline;
        }
      } catch (const std::exception& e) {
        write_err(out, e.what());
        continue;
      }
      RouteResponse resp = service.route(std::move(req));
      if (!resp.ok()) {
        write_err(out, resp.error.empty() ? to_string(resp.status)
                                          : std::string(to_string(resp.status)) +
                                                ": " + resp.error);
        continue;
      }
      const std::string body =
          io::write_routes_string(resp.session->layout, resp.result);
      std::ostringstream meta;
      meta << "routed " << resp.result.routed << " failed "
           << resp.result.failed << " wirelength "
           << resp.result.total_wirelength << " queue_us "
           << resp.queue_wait.count() << " total_us " << resp.latency.count();
      write_ok(out, meta.str(), body);
      continue;
    }

    write_err(out, "unknown command '" + kw + "'");
  }
  return frames;
}

}  // namespace gcr::serve
