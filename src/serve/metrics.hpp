#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/trace.hpp"

/// \file metrics.hpp
/// Service observability: request counters, per-verb lock-free latency
/// histograms, rendered as the STATS response body.  Counters and histogram
/// buckets are lock-free atomics (touched on every request); percentile
/// queries — rare, operator driven — walk a bucket snapshot.
///
/// LatencyWindow (the original exact-sample mutexed ring) is retained for
/// offline consumers and differential tests, but is no longer on the
/// service hot path.

namespace gcr::serve {

/// Sliding window over the most recent `capacity` latency samples
/// (microseconds).  A ring buffer rather than a full history so a soak run
/// cannot grow memory without bound; percentiles therefore describe recent
/// traffic, which is what a load shedder or dashboard wants anyway.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(std::uint64_t micros) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < capacity_) {
      samples_.push_back(micros);
    } else {
      samples_[next_] = micros;
    }
    next_ = (next_ + 1) % capacity_;
    ++count_;
  }

  /// \p q in [0, 100].  Nearest-rank percentile over the window; 0 when no
  /// samples have been recorded.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  /// All requested percentiles from ONE snapshot of the window: the samples
  /// are copied (under the mutex) and sorted once, and every quantile is
  /// ranked against that single sorted copy — a multi-quantile caller no
  /// longer pays capacity·log(capacity) per quantile.
  [[nodiscard]] std::vector<std::uint64_t> percentiles(
      const std::vector<double>& qs) const;

  [[nodiscard]] std::uint64_t total_recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> samples_;
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
};

/// Aggregate counters for one RoutingService instance.
struct ServiceMetrics {
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> requests_ok{0};
  std::atomic<std::uint64_t> requests_rejected{0};   ///< queue full
  std::atomic<std::uint64_t> requests_expired{0};    ///< deadline passed
  std::atomic<std::uint64_t> requests_cancelled{0};
  std::atomic<std::uint64_t> requests_not_found{0};  ///< unknown session key
  std::atomic<std::uint64_t> requests_errored{0};    ///< routing threw
  std::atomic<std::uint64_t> nets_routed{0};
  std::atomic<std::uint64_t> nets_failed{0};
  /// LOAD jobs offloaded to the worker pool by the event-driven front-end
  /// (the blocking front-end parses inline and does not count here).
  std::atomic<std::uint64_t> loads_offloaded{0};
  std::atomic<std::uint64_t> loads_ok{0};
  std::atomic<std::uint64_t> loads_failed{0};  ///< parse error / rejected
  /// OPTIMIZE runs completed (kOk) and the total rip-up passes they ran —
  /// passes/run is the convergence-speed dashboard number.
  std::atomic<std::uint64_t> optimizes_ok{0};
  std::atomic<std::uint64_t> optimize_passes{0};
  /// Pipeline stages (DETAIL/CONGEST/VERIFY/SVG) completed, split by how:
  /// served from the stage cache vs. executed on a worker vs. failed.
  std::atomic<std::uint64_t> stages_ok{0};
  std::atomic<std::uint64_t> stages_failed{0};
  /// Server-side GEN workload syntheses (materialized sessions).
  std::atomic<std::uint64_t> gens_ok{0};
  std::atomic<std::uint64_t> gens_failed{0};
  /// Session lifecycle: pins derived/claimed, released (UNPIN + disconnect
  /// auto-release), restored from snapshots at startup, and the mutation
  /// ops (COMMIT/UNCOMMIT/REROUTE/SAVE) split by outcome.
  std::atomic<std::uint64_t> pins_created{0};
  std::atomic<std::uint64_t> pins_released{0};
  std::atomic<std::uint64_t> pins_restored{0};
  std::atomic<std::uint64_t> pin_ops_ok{0};
  std::atomic<std::uint64_t> pin_ops_failed{0};
  std::atomic<std::uint64_t> pin_saves{0};
  /// Snapshots written by the periodic background sweep and the shutdown
  /// final SAVE (--snapshot-interval-s), as opposed to explicit SAVEs.
  std::atomic<std::uint64_t> pin_autosaves{0};
  /// Lock-free log2 histograms — recorded on every request with zero
  /// mutexes (Histogram::record is three relaxed atomic adds).
  Histogram latency;     ///< enqueue -> response, microseconds (all verbs)
  Histogram queue_wait;  ///< enqueue -> dequeue, microseconds
  /// Per-verb latency shards: a microsecond STATS render and a multi-second
  /// OPTIMIZE no longer share one distribution.
  std::array<Histogram, kVerbKinds> verb_latency{};
};

/// One live fair-queue shard in a snapshot: depth and starvation evidence
/// for a key with work currently queued (see FairQueue::shard_stats).
/// Rendered positionally (`queue_shard<i>_*`) — STATS values must be
/// numeric, so the key itself stays out of the text.
struct QueueShardSnapshot {
  std::size_t depth = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t served = 0;
  std::uint64_t head_wait_us = 0;
};

/// Per-verb latency digest in a snapshot (percentiles are log2-bucket upper
/// bounds, see Histogram).
struct VerbLatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
};

/// One point-in-time view, cheap to format.
struct MetricsSnapshot {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_expired = 0;
  std::uint64_t requests_cancelled = 0;
  std::uint64_t requests_not_found = 0;
  std::uint64_t requests_errored = 0;
  std::uint64_t nets_routed = 0;
  std::uint64_t nets_failed = 0;
  std::uint64_t loads_offloaded = 0;
  std::uint64_t loads_ok = 0;
  std::uint64_t loads_failed = 0;
  std::uint64_t optimizes_ok = 0;
  std::uint64_t optimize_passes = 0;
  std::uint64_t stages_ok = 0;
  std::uint64_t stages_failed = 0;
  std::uint64_t gens_ok = 0;
  std::uint64_t gens_failed = 0;
  std::uint64_t pins_created = 0;
  std::uint64_t pins_released = 0;
  std::uint64_t pins_restored = 0;
  std::uint64_t pin_ops_ok = 0;
  std::uint64_t pin_ops_failed = 0;
  std::uint64_t pin_saves = 0;
  std::uint64_t pin_autosaves = 0;
  std::size_t pins_active = 0;
  std::uint64_t stage_cache_hits = 0;
  std::uint64_t stage_cache_misses = 0;
  std::uint64_t stage_cache_evictions = 0;
  std::size_t stage_cache_size = 0;
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p95_us = 0;
  std::uint64_t latency_p99_us = 0;
  std::uint64_t queue_wait_p50_us = 0;
  /// One digest per VerbKind, indexed by static_cast<size_t>(kind); all
  /// kinds are rendered (count 0 shows as zeros) so dashboards see a stable
  /// key set.
  std::array<VerbLatencySnapshot, kVerbKinds> verbs{};
  std::uint64_t uptime_s = 0;
  std::uint32_t protocol_version = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  /// Weighted-fair dispatch: live shard count, DRR ring rotations, the age
  /// of the oldest queued item anywhere (the starvation gauge), and one
  /// entry per live shard in service order.
  std::size_t queue_shards = 0;
  std::uint64_t queue_fair_rounds = 0;
  std::uint64_t queue_oldest_wait_us = 0;
  std::vector<QueueShardSnapshot> queue_shard_stats;
  std::size_t workers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;

  /// `key value` lines, one metric per line — the STATS response body.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace gcr::serve
