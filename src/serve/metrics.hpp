#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// \file metrics.hpp
/// Service observability: request counters and a latency window with
/// percentile queries, rendered as the STATS response body.  Counters are
/// lock-free atomics (touched on every request); the latency window takes a
/// mutex only to append one sample, and percentile queries — rare, operator
/// driven — pay the sort.

namespace gcr::serve {

/// Sliding window over the most recent `capacity` latency samples
/// (microseconds).  A ring buffer rather than a full history so a soak run
/// cannot grow memory without bound; percentiles therefore describe recent
/// traffic, which is what a load shedder or dashboard wants anyway.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(std::uint64_t micros) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < capacity_) {
      samples_.push_back(micros);
    } else {
      samples_[next_] = micros;
    }
    next_ = (next_ + 1) % capacity_;
    ++count_;
  }

  /// \p q in [0, 100].  Nearest-rank percentile over the window; 0 when no
  /// samples have been recorded.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  [[nodiscard]] std::uint64_t total_recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> samples_;
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
};

/// Aggregate counters for one RoutingService instance.
struct ServiceMetrics {
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> requests_ok{0};
  std::atomic<std::uint64_t> requests_rejected{0};   ///< queue full
  std::atomic<std::uint64_t> requests_expired{0};    ///< deadline passed
  std::atomic<std::uint64_t> requests_cancelled{0};
  std::atomic<std::uint64_t> requests_not_found{0};  ///< unknown session key
  std::atomic<std::uint64_t> requests_errored{0};    ///< routing threw
  std::atomic<std::uint64_t> nets_routed{0};
  std::atomic<std::uint64_t> nets_failed{0};
  /// LOAD jobs offloaded to the worker pool by the event-driven front-end
  /// (the blocking front-end parses inline and does not count here).
  std::atomic<std::uint64_t> loads_offloaded{0};
  std::atomic<std::uint64_t> loads_ok{0};
  std::atomic<std::uint64_t> loads_failed{0};  ///< parse error / rejected
  /// OPTIMIZE runs completed (kOk) and the total rip-up passes they ran —
  /// passes/run is the convergence-speed dashboard number.
  std::atomic<std::uint64_t> optimizes_ok{0};
  std::atomic<std::uint64_t> optimize_passes{0};
  /// Pipeline stages (DETAIL/CONGEST/VERIFY/SVG) completed, split by how:
  /// served from the stage cache vs. executed on a worker vs. failed.
  std::atomic<std::uint64_t> stages_ok{0};
  std::atomic<std::uint64_t> stages_failed{0};
  /// Server-side GEN workload syntheses (materialized sessions).
  std::atomic<std::uint64_t> gens_ok{0};
  std::atomic<std::uint64_t> gens_failed{0};
  /// Session lifecycle: pins derived/claimed, released (UNPIN + disconnect
  /// auto-release), restored from snapshots at startup, and the mutation
  /// ops (COMMIT/UNCOMMIT/REROUTE/SAVE) split by outcome.
  std::atomic<std::uint64_t> pins_created{0};
  std::atomic<std::uint64_t> pins_released{0};
  std::atomic<std::uint64_t> pins_restored{0};
  std::atomic<std::uint64_t> pin_ops_ok{0};
  std::atomic<std::uint64_t> pin_ops_failed{0};
  std::atomic<std::uint64_t> pin_saves{0};
  LatencyWindow latency;        ///< enqueue -> response, microseconds
  LatencyWindow queue_wait;     ///< enqueue -> dequeue, microseconds
};

/// One point-in-time view, cheap to format.
struct MetricsSnapshot {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_expired = 0;
  std::uint64_t requests_cancelled = 0;
  std::uint64_t requests_not_found = 0;
  std::uint64_t requests_errored = 0;
  std::uint64_t nets_routed = 0;
  std::uint64_t nets_failed = 0;
  std::uint64_t loads_offloaded = 0;
  std::uint64_t loads_ok = 0;
  std::uint64_t loads_failed = 0;
  std::uint64_t optimizes_ok = 0;
  std::uint64_t optimize_passes = 0;
  std::uint64_t stages_ok = 0;
  std::uint64_t stages_failed = 0;
  std::uint64_t gens_ok = 0;
  std::uint64_t gens_failed = 0;
  std::uint64_t pins_created = 0;
  std::uint64_t pins_released = 0;
  std::uint64_t pins_restored = 0;
  std::uint64_t pin_ops_ok = 0;
  std::uint64_t pin_ops_failed = 0;
  std::uint64_t pin_saves = 0;
  std::size_t pins_active = 0;
  std::uint64_t stage_cache_hits = 0;
  std::uint64_t stage_cache_misses = 0;
  std::uint64_t stage_cache_evictions = 0;
  std::size_t stage_cache_size = 0;
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p95_us = 0;
  std::uint64_t latency_p99_us = 0;
  std::uint64_t queue_wait_p50_us = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;

  /// `key value` lines, one metric per line — the STATS response body.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace gcr::serve
