// gcr_serve — the routing daemon: speaks the framed line protocol of
// serve/protocol.hpp over stdin/stdout (the pipe transport), over an
// inherited descriptor (the socketpair transport), or — the multi-client
// mode — over TCP via the epoll front-end (src/net/), all backed by one
// persistent worker pool and a content-addressed layout-session cache.
//
//   $ gcr_serve [options]
//     --workers N      routing worker threads (0 = one per hardware thread)
//     --queue N        bounded job-queue capacity      (default 64)
//     --cache N        layout-session cache capacity   (default 8)
//     --fd FD          serve a bidirectional descriptor (e.g. one end of a
//                      socketpair) instead of stdin/stdout
//     --listen PORT    serve many concurrent TCP clients on 127.0.0.1:PORT
//                      (0 = kernel-assigned; the bound port is printed as
//                      "gcr_serve: listening on 127.0.0.1:<port>")
//     --max-conns N    TCP mode: concurrent connection cap (default 256)
//     --high-water N   TCP mode: per-connection outbound bytes past which
//                      reads are suspended (slow-client backpressure)
//     --hard-cap N     TCP mode: outbound bytes past which a slow client
//                      is dropped
//     --snapshot-dir D enable SAVE: pinned sessions serialize to D/<name>
//     --restore-dir D  rehydrate every snapshot in D at startup; restored
//                      pins are unowned until a client PINs their handle
//     --slow-ms N      slow-request ring threshold: only requests taking at
//                      least N ms are retained for the TRACE verb
//                      (default 0 = keep the slowest seen regardless)
//
// A session survives across requests: LOAD once, ROUTE many times — every
// ROUTE reuses the session's prebuilt obstacle index and escape lines, and
// `REROUTE <session> nets=a,b` rips the named nets out of a full
// sequential pass and re-routes them against the committed remainder
// (incremental halo removal, no environment rebuild).  In TCP mode cold
// LOADs build on the worker pool, so one giant layout upload cannot stall
// the other connections.  SIGINT/SIGTERM shut down gracefully: the listener closes,
// in-flight jobs drain and flush, then the loop exits (a second signal
// force-closes lingering connections).
//
//   $ printf 'LOAD 47\nboundary 0 0 64 64\ncell a 8 8 24 24\n...' | gcr_serve

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>

#include "net/event_loop.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"

namespace {

gcr::net::EventLoop* g_loop = nullptr;

extern "C" void on_shutdown_signal(int) {
  if (g_loop != nullptr) g_loop->stop();  // async-signal-safe
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--cache N] [--fd FD]\n"
               "       [--snapshot-dir DIR] [--restore-dir DIR] [--slow-ms N]\n"
               "       [--listen PORT [--max-conns N] [--high-water BYTES]\n"
               "        [--hard-cap BYTES]]\n",
               argv0);
  return 2;
}

bool parse_size(const char* v, std::size_t limit, std::size_t* out) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0' || v[0] == '-' || parsed > limit) return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcr;

  serve::RoutingService::Options opts;
  net::EventLoopOptions lopts;
  long fd = -1;
  long listen_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    std::size_t parsed = 0;
    if (arg == "--workers" && v != nullptr && parse_size(v, 1024, &parsed)) {
      opts.workers = parsed;
      ++i;
    } else if (arg == "--queue" && v != nullptr &&
               parse_size(v, 1 << 20, &parsed)) {
      opts.queue_capacity = parsed;
      ++i;
    } else if (arg == "--cache" && v != nullptr &&
               parse_size(v, 1 << 16, &parsed)) {
      opts.cache_capacity = parsed;
      ++i;
    } else if (arg == "--fd" && v != nullptr && parse_size(v, 1 << 20, &parsed)) {
      fd = static_cast<long>(parsed);
      ++i;
    } else if (arg == "--listen" && v != nullptr &&
               parse_size(v, 65535, &parsed)) {
      listen_port = static_cast<long>(parsed);
      ++i;
    } else if (arg == "--max-conns" && v != nullptr &&
               parse_size(v, 1 << 16, &parsed) && parsed > 0) {
      lopts.max_connections = parsed;
      ++i;
    } else if (arg == "--high-water" && v != nullptr &&
               parse_size(v, 1ull << 30, &parsed) && parsed > 0) {
      lopts.write_high_water = parsed;
      ++i;
    } else if (arg == "--hard-cap" && v != nullptr &&
               parse_size(v, 1ull << 31, &parsed) && parsed > 0) {
      lopts.write_hard_cap = parsed;
      ++i;
    } else if (arg == "--snapshot-dir" && v != nullptr && v[0] != '\0') {
      opts.snapshot_dir = v;
      ++i;
    } else if (arg == "--restore-dir" && v != nullptr && v[0] != '\0') {
      opts.restore_dir = v;
      ++i;
    } else if (arg == "--slow-ms" && v != nullptr &&
               parse_size(v, 86'400'000, &parsed)) {
      opts.slow_threshold_ms = parsed;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (lopts.write_hard_cap < lopts.write_high_water) {
    std::fprintf(stderr, "gcr_serve: --hard-cap must be >= --high-water\n");
    return 2;
  }

  try {
    serve::RoutingService service(opts);

    if (listen_port >= 0) {
      lopts.port = static_cast<std::uint16_t>(listen_port);
      net::EventLoop loop(service, lopts);
      g_loop = &loop;
      std::signal(SIGINT, on_shutdown_signal);
      std::signal(SIGTERM, on_shutdown_signal);
      std::signal(SIGPIPE, SIG_IGN);
      // The banner is the contract with spawners (gcr_loadgen --tcp, the CI
      // smoke job): parse the bound port from stdout when --listen 0.
      std::printf("gcr_serve: listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(loop.port()));
      std::fflush(stdout);
      loop.run();
      g_loop = nullptr;
      const net::EventLoopStats& s = loop.stats();
      std::fprintf(stderr,
                   "gcr_serve: drained: %llu conns, %llu commands, "
                   "%llu suspended, %llu dropped slow, %llu dropped error\n",
                   static_cast<unsigned long long>(s.accepted.load()),
                   static_cast<unsigned long long>(s.commands.load()),
                   static_cast<unsigned long long>(s.reads_suspended.load()),
                   static_cast<unsigned long long>(s.dropped_slow.load()),
                   static_cast<unsigned long long>(s.dropped_error.load()));
      return 0;
    }

    std::size_t frames = 0;
    if (fd >= 0) {
      serve::FdTransport transport(static_cast<int>(fd));
      frames = serve::serve_connection(service, transport.in(),
                                       transport.out());
    } else {
      std::ios::sync_with_stdio(false);
      frames = serve::serve_connection(service, std::cin, std::cout);
    }
    std::fprintf(stderr, "gcr_serve: connection closed after %zu frames\n",
                 frames);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gcr_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
