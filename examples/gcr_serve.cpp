// gcr_serve — the routing daemon: speaks the framed line protocol of
// serve/protocol.hpp over stdin/stdout (the pipe transport), over an
// inherited descriptor (the socketpair transport), or — the multi-client
// mode — over TCP via the epoll front-end (src/net/), all backed by one
// persistent worker pool and a content-addressed layout-session cache.
//
//   $ gcr_serve [options]
//     --workers N      routing worker threads (0 = one per hardware thread)
//     --queue N        fair job-queue capacity (total, all shards)
//                      (default 64)
//     --cache N        layout-session cache capacity   (default 8)
//     --fd FD          serve a bidirectional descriptor (e.g. one end of a
//                      socketpair) instead of stdin/stdout
//     --listen PORT    serve many concurrent TCP clients on 127.0.0.1:PORT
//                      (0 = kernel-assigned; the bound port is printed as
//                      "gcr_serve: listening on 127.0.0.1:<port>")
//     --reactors N     TCP mode: N event-loop threads sharing the port via
//                      SO_REUSEPORT (connection-affine; default 1)
//     --listen-unix P  also accept connections on unix socket path P
//                      (same protocol; served by the first reactor)
//     --max-conns N    TCP mode: per-reactor connection cap (default 256)
//     --high-water N   TCP mode: per-connection outbound bytes past which
//                      reads are suspended (slow-client backpressure)
//     --hard-cap N     TCP mode: outbound bytes past which a slow client
//                      is dropped
//     --snapshot-dir D enable SAVE: pinned sessions serialize to D/<name>;
//                      a graceful drain writes a final snapshot per
//                      surviving pin after every loop quiesces
//     --snapshot-interval-s N
//                      with --snapshot-dir: background-SAVE every pinned
//                      session every N seconds (rides each pin's ticket
//                      chain, so it never tears a mutation)
//     --restore-dir D  rehydrate every snapshot in D at startup; restored
//                      pins are unowned until a client PINs their handle
//     --slow-ms N      slow-request ring threshold: only requests taking at
//                      least N ms are retained for the TRACE verb
//                      (default 0 = keep the slowest seen regardless)
//
// A session survives across requests: LOAD once, ROUTE many times — every
// ROUTE reuses the session's prebuilt obstacle index and escape lines, and
// `REROUTE <session> nets=a,b` rips the named nets out of a full
// sequential pass and re-routes them against the committed remainder
// (incremental halo removal, no environment rebuild).  In TCP mode cold
// LOADs build on the worker pool, so one giant layout upload cannot stall
// the other connections.  With --reactors N the kernel shards accepted
// connections across N independent epoll loops; all of them feed one
// worker pool through the weighted-fair queue, so responses are
// byte-identical to the single-reactor build.  SIGINT/SIGTERM shut down
// gracefully: every listener closes, in-flight jobs drain and flush, and
// the loop threads join as a barrier before the final pin snapshots are
// written (a second signal force-closes lingering connections).
//
//   $ printf 'LOAD 47\nboundary 0 0 64 64\ncell a 8 8 24 24\n...' | gcr_serve

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>

#include "net/reactor_pool.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"

namespace {

gcr::net::ReactorPool* g_pool = nullptr;

extern "C" void on_shutdown_signal(int) {
  if (g_pool != nullptr) g_pool->stop();  // async-signal-safe
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--cache N] [--fd FD]\n"
               "       [--snapshot-dir DIR [--snapshot-interval-s N]]\n"
               "       [--restore-dir DIR] [--slow-ms N]\n"
               "       [--listen PORT [--reactors N] [--listen-unix PATH]\n"
               "        [--max-conns N] [--high-water BYTES]\n"
               "        [--hard-cap BYTES]]\n",
               argv0);
  return 2;
}

bool parse_size(const char* v, std::size_t limit, std::size_t* out) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0' || v[0] == '-' || parsed > limit) return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcr;

  serve::RoutingService::Options opts;
  net::EventLoopOptions lopts;
  std::size_t reactors = 1;
  long fd = -1;
  long listen_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    std::size_t parsed = 0;
    if (arg == "--workers" && v != nullptr && parse_size(v, 1024, &parsed)) {
      opts.workers = parsed;
      ++i;
    } else if (arg == "--queue" && v != nullptr &&
               parse_size(v, 1 << 20, &parsed)) {
      opts.queue_capacity = parsed;
      ++i;
    } else if (arg == "--cache" && v != nullptr &&
               parse_size(v, 1 << 16, &parsed)) {
      opts.cache_capacity = parsed;
      ++i;
    } else if (arg == "--fd" && v != nullptr && parse_size(v, 1 << 20, &parsed)) {
      fd = static_cast<long>(parsed);
      ++i;
    } else if (arg == "--listen" && v != nullptr &&
               parse_size(v, 65535, &parsed)) {
      listen_port = static_cast<long>(parsed);
      ++i;
    } else if (arg == "--reactors" && v != nullptr &&
               parse_size(v, 256, &parsed) && parsed > 0) {
      reactors = parsed;
      ++i;
    } else if (arg == "--listen-unix" && v != nullptr && v[0] != '\0') {
      lopts.unix_path = v;
      ++i;
    } else if (arg == "--snapshot-interval-s" && v != nullptr &&
               parse_size(v, 86'400, &parsed) && parsed > 0) {
      opts.snapshot_interval_s = parsed;
      ++i;
    } else if (arg == "--max-conns" && v != nullptr &&
               parse_size(v, 1 << 16, &parsed) && parsed > 0) {
      lopts.max_connections = parsed;
      ++i;
    } else if (arg == "--high-water" && v != nullptr &&
               parse_size(v, 1ull << 30, &parsed) && parsed > 0) {
      lopts.write_high_water = parsed;
      ++i;
    } else if (arg == "--hard-cap" && v != nullptr &&
               parse_size(v, 1ull << 31, &parsed) && parsed > 0) {
      lopts.write_hard_cap = parsed;
      ++i;
    } else if (arg == "--snapshot-dir" && v != nullptr && v[0] != '\0') {
      opts.snapshot_dir = v;
      ++i;
    } else if (arg == "--restore-dir" && v != nullptr && v[0] != '\0') {
      opts.restore_dir = v;
      ++i;
    } else if (arg == "--slow-ms" && v != nullptr &&
               parse_size(v, 86'400'000, &parsed)) {
      opts.slow_threshold_ms = parsed;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (lopts.write_hard_cap < lopts.write_high_water) {
    std::fprintf(stderr, "gcr_serve: --hard-cap must be >= --high-water\n");
    return 2;
  }
  if (opts.snapshot_interval_s > 0 && opts.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "gcr_serve: --snapshot-interval-s requires --snapshot-dir\n");
    return 2;
  }

  try {
    serve::RoutingService service(opts);

    if (listen_port >= 0 || !lopts.unix_path.empty()) {
      // --listen-unix alone still binds TCP (port 0 = kernel-assigned) so
      // the banner contract with spawners holds in every network mode.
      lopts.port = listen_port >= 0 ? static_cast<std::uint16_t>(listen_port)
                                    : std::uint16_t{0};
      net::ReactorPoolOptions popts;
      popts.reactors = reactors;
      popts.loop = lopts;
      net::ReactorPool pool(service, popts);
      g_pool = &pool;
      std::signal(SIGINT, on_shutdown_signal);
      std::signal(SIGTERM, on_shutdown_signal);
      std::signal(SIGPIPE, SIG_IGN);
      // The banner is the contract with spawners (gcr_loadgen --tcp, the CI
      // smoke job): parse the bound port from stdout when --listen 0.
      std::printf("gcr_serve: listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(pool.port()));
      std::fflush(stdout);
      pool.run();  // returns once every reactor has drained (the barrier)
      g_pool = nullptr;
      // Only now — all loops quiesced, every in-flight pinned-session
      // mutation finished or cancelled — write the final snapshots.
      if (!opts.snapshot_dir.empty()) {
        const std::size_t saved = service.final_save_pins();
        if (saved > 0) {
          std::fprintf(stderr, "gcr_serve: final save: %zu pin(s)\n", saved);
        }
      }
      net::LoopStatsView total;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        total.merge(net::snapshot_loop_stats(pool.loop(i).stats()));
      }
      std::fprintf(stderr,
                   "gcr_serve: drained %zu reactor(s): %llu conns, "
                   "%llu commands, %llu suspended, %llu dropped slow, "
                   "%llu dropped error\n",
                   pool.size(),
                   static_cast<unsigned long long>(total.accepted),
                   static_cast<unsigned long long>(total.commands),
                   static_cast<unsigned long long>(total.reads_suspended),
                   static_cast<unsigned long long>(total.dropped_slow),
                   static_cast<unsigned long long>(total.dropped_error));
      return 0;
    }

    std::size_t frames = 0;
    if (fd >= 0) {
      serve::FdTransport transport(static_cast<int>(fd));
      frames = serve::serve_connection(service, transport.in(),
                                       transport.out());
    } else {
      std::ios::sync_with_stdio(false);
      frames = serve::serve_connection(service, std::cin, std::cout);
    }
    std::fprintf(stderr, "gcr_serve: connection closed after %zu frames\n",
                 frames);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gcr_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
