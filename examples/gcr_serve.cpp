// gcr_serve — the routing daemon: speaks the framed line protocol of
// serve/protocol.hpp over stdin/stdout (the pipe transport) or over an
// inherited descriptor (the socketpair transport), backed by a persistent
// worker pool and a content-addressed layout-session cache.
//
//   $ gcr_serve [options]
//     --workers N    routing worker threads (0 = one per hardware thread)
//     --queue N      bounded job-queue capacity      (default 64)
//     --cache N      layout-session cache capacity   (default 8)
//     --fd FD        serve a bidirectional descriptor (e.g. one end of a
//                    socketpair) instead of stdin/stdout
//
// A session survives across requests: LOAD once, ROUTE many times — every
// ROUTE reuses the session's prebuilt obstacle index and escape lines.
//
//   $ printf 'LOAD 47\nboundary 0 0 64 64\ncell a 8 8 24 24\n...' | gcr_serve

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>

#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--cache N] [--fd FD]\n",
               argv0);
  return 2;
}

bool parse_size(const char* v, std::size_t limit, std::size_t* out) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0' || v[0] == '-' || parsed > limit) return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcr;

  serve::RoutingService::Options opts;
  long fd = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    std::size_t parsed = 0;
    if (arg == "--workers" && v != nullptr && parse_size(v, 1024, &parsed)) {
      opts.workers = parsed;
      ++i;
    } else if (arg == "--queue" && v != nullptr &&
               parse_size(v, 1 << 20, &parsed)) {
      opts.queue_capacity = parsed;
      ++i;
    } else if (arg == "--cache" && v != nullptr &&
               parse_size(v, 1 << 16, &parsed)) {
      opts.cache_capacity = parsed;
      ++i;
    } else if (arg == "--fd" && v != nullptr && parse_size(v, 1 << 20, &parsed)) {
      fd = static_cast<long>(parsed);
      ++i;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    serve::RoutingService service(opts);
    std::size_t frames = 0;
    if (fd >= 0) {
      serve::FdTransport transport(static_cast<int>(fd));
      frames = serve::serve_connection(service, transport.in(),
                                       transport.out());
    } else {
      std::ios::sync_with_stdio(false);
      frames = serve::serve_connection(service, std::cin, std::cout);
    }
    std::fprintf(stderr, "gcr_serve: connection closed after %zu frames\n",
                 frames);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gcr_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
