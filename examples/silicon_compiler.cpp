// Silicon-compiler scenario: parameterized cells drawn "on demand from a
// parameterized library" (the paper cites its own Siclops silicon compiler)
// and assembled into a datapath.
//
// A tiny cell library generates ALUs, register files and ROMs whose size
// depends on bit width; the program instantiates a W-bit datapath, places
// the blocks in a row, wires the buses terminal-by-terminal, and routes the
// chip with the gridless global router.  Multi-pin terminals appear
// naturally: each bus terminal offers a pin on both the north and south
// edge of its cell, and the router picks whichever is cheaper per net.
//
//   $ ./silicon_compiler [bits]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/netlist_router.hpp"
#include "io/svg.hpp"
#include "io/text_format.hpp"

namespace {

using namespace gcr;
using geom::Coord;
using geom::Point;
using geom::Rect;

/// Generates one datapath block: width scales with bit count, and each bus
/// bit gets a two-pin terminal (north + south edge).
layout::CellId make_block(layout::Layout& chip, const std::string& name,
                          Coord x, Coord y, Coord bit_pitch, int bits,
                          Coord height) {
  const Coord w = bit_pitch * static_cast<Coord>(bits + 1);
  const Rect outline{x, y, x + w, y + height};
  const auto id = chip.add_cell(layout::Cell{name, outline});
  for (int b = 0; b < bits; ++b) {
    const Coord px = x + bit_pitch * static_cast<Coord>(b + 1);
    layout::Terminal t;
    t.name = "bit" + std::to_string(b);
    t.pins.push_back(layout::Pin{Point{px, y + height}, t.name});  // north
    t.pins.push_back(layout::Pin{Point{px, y}, t.name});           // south
    chip.cell(id).add_terminal(std::move(t));
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const Coord bit_pitch = 12;
  const Coord row_y = 120;
  const Coord height = 80;
  const Coord gap = 40;

  // Instantiate the datapath: regfile -> alu -> shifter in a row, with the
  // control ROM in a second row directly below the ALU.  The ROM's control
  // nets reach the ALU's *south* pins cheaply — but only because terminals
  // are multi-pin; with north-only pins every control net must round the
  // ALU block.
  const Coord block_w = bit_pitch * static_cast<Coord>(bits + 1);
  const Coord chip_w = 3 * block_w + 4 * gap;
  layout::Layout chip(Rect{0, 0, chip_w, 320});
  chip.set_min_separation(8);

  Coord x = gap;
  const auto regfile =
      make_block(chip, "regfile", x, row_y, bit_pitch, bits, height);
  x += block_w + gap;
  const auto alu = make_block(chip, "alu", x, row_y, bit_pitch, bits, height);
  const auto rom = make_block(chip, "rom", x, 20, bit_pitch, bits, 60);
  x += block_w + gap;
  const auto shifter =
      make_block(chip, "shifter", x, row_y, bit_pitch, bits, height);

  // Buses: regfile->alu->shifter per bit, plus rom->alu control bits.
  for (int b = 0; b < bits; ++b) {
    layout::Net bus("bus" + std::to_string(b));
    bus.add_terminal(layout::TerminalRef{regfile, static_cast<std::uint32_t>(b)});
    bus.add_terminal(layout::TerminalRef{alu, static_cast<std::uint32_t>(b)});
    bus.add_terminal(
        layout::TerminalRef{shifter, static_cast<std::uint32_t>(b)});
    chip.add_net(std::move(bus));
    layout::Net ctl("ctl" + std::to_string(b));
    ctl.add_terminal(layout::TerminalRef{rom, static_cast<std::uint32_t>(b)});
    ctl.add_terminal(layout::TerminalRef{alu, static_cast<std::uint32_t>(b)});
    chip.add_net(std::move(ctl));
  }
  if (!chip.valid()) {
    std::puts("generated datapath violates layout rules");
    return 1;
  }

  std::printf("datapath: %d bits, %zu cells, %zu nets, %zu pins\n", bits,
              chip.cells().size(), chip.nets().size(), chip.pin_count());

  const route::NetlistRouter router(chip);
  const auto result = router.route_all();
  std::printf("routed %zu/%zu nets, wirelength %lld, %zu nodes expanded\n",
              result.routed, chip.nets().size(),
              static_cast<long long>(result.total_wirelength),
              result.stats.nodes_expanded);

  // Multi-pin payoff: re-route with single-pin (north only) terminals for
  // comparison.
  layout::Layout single = chip;
  for (std::size_t c = 0; c < single.cells().size(); ++c) {
    layout::Cell& cell =
        single.cell(layout::CellId{static_cast<std::uint32_t>(c)});
    layout::Cell trimmed(cell.name(), cell.outline());
    for (const auto& t : cell.terminals()) {
      layout::Terminal t1;
      t1.name = t.name;
      t1.pins.push_back(t.pins.front());
      trimmed.add_terminal(std::move(t1));
    }
    cell = trimmed;
  }
  const route::NetlistRouter router1(single);
  const auto result1 = router1.route_all();
  std::printf("same chip, single-pin terminals: wirelength %lld "
              "(multi-pin saves %.1f%%)\n",
              static_cast<long long>(result1.total_wirelength),
              100.0 *
                  static_cast<double>(result1.total_wirelength -
                                      result.total_wirelength) /
                  static_cast<double>(result1.total_wirelength));

  io::save_svg("datapath.svg", chip, &result, {.scale = 2.0});
  std::puts("wrote datapath.svg");

  // The layout also round-trips through the text format.
  const std::string text = io::write_layout_string(chip);
  std::printf("text-format size: %zu bytes\n", text.size());
  return 0;
}
