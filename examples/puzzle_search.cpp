// State-space search beyond routing: the 8-puzzle.
//
// The paper grounds its router in AI state-space search: "Much of the early
// work has concentrated on games such as chess, checkers, and the
// 15-puzzle."  This example drives the very same Searcher the router uses —
// same OPEN/CLOSED lists, same strategies — on the 8-puzzle, with the
// Manhattan-distance-of-tiles heuristic playing the role the rectilinear
// distance plays in routing.
//
//   $ ./puzzle_search

#include <array>
#include <cstdio>
#include <random>

#include "search/searcher.hpp"

namespace {

using gcr::geom::Cost;
using gcr::search::SearchOptions;
using gcr::search::Strategy;
using gcr::search::Successor;

/// A 3x3 board; value 0 is the blank.  Encoded in a single int for hashing.
struct Board {
  std::array<std::uint8_t, 9> t{};

  friend constexpr auto operator<=>(const Board&, const Board&) = default;

  [[nodiscard]] std::size_t blank() const {
    for (std::size_t i = 0; i < 9; ++i) {
      if (t[i] == 0) return i;
    }
    return 9;
  }
};

struct BoardHash {
  std::size_t operator()(const Board& b) const noexcept {
    std::size_t h = 0;
    for (const auto v : b.t) h = h * 11 + v;
    return h;
  }
};

const Board kGoal{{1, 2, 3, 4, 5, 6, 7, 8, 0}};

struct PuzzleSpace {
  using State = Board;

  void successors(const State& s, std::vector<Successor<State>>& out) const {
    const std::size_t b = s.blank();
    const int r = static_cast<int>(b) / 3;
    const int c = static_cast<int>(b) % 3;
    static constexpr int kDr[4] = {1, -1, 0, 0};
    static constexpr int kDc[4] = {0, 0, 1, -1};
    for (int k = 0; k < 4; ++k) {
      const int nr = r + kDr[k];
      const int nc = c + kDc[k];
      if (nr < 0 || nr > 2 || nc < 0 || nc > 2) continue;
      Board nxt = s;
      std::swap(nxt.t[b], nxt.t[static_cast<std::size_t>(nr * 3 + nc)]);
      out.push_back({nxt, 1});
    }
  }

  /// Sum of tile Manhattan distances — admissible, exactly as the
  /// rectilinear distance is for wires.
  [[nodiscard]] Cost heuristic(const State& s) const {
    Cost h = 0;
    for (int i = 0; i < 9; ++i) {
      const int v = s.t[static_cast<std::size_t>(i)];
      if (v == 0) continue;
      const int goal = v - 1;
      h += std::abs(i / 3 - goal / 3) + std::abs(i % 3 - goal % 3);
    }
    return h;
  }

  [[nodiscard]] bool is_goal(const State& s) const { return s == kGoal; }
};

Board scramble(int moves, std::uint64_t seed) {
  PuzzleSpace space;
  Board b = kGoal;
  std::mt19937_64 rng(seed);
  std::vector<Successor<Board>> succ;
  for (int i = 0; i < moves; ++i) {
    succ.clear();
    space.successors(b, succ);
    b = succ[rng() % succ.size()].state;
  }
  return b;
}

}  // namespace

// The generic engine hashes states with std::hash; provide it for Board.
template <>
struct std::hash<Board> {
  std::size_t operator()(const Board& b) const noexcept {
    return BoardHash{}(b);
  }
};

int main() {
  PuzzleSpace space;
  std::puts("8-puzzle via the router's search engine");
  std::printf("%-14s %10s %12s %10s %8s\n", "strategy", "moves", "expanded",
              "generated", "found");
  for (const int difficulty : {15, 40, 120}) {
    const Board start = scramble(difficulty, 1234);
    for (const Strategy s :
         {Strategy::kAStar, Strategy::kBestFirst, Strategy::kBreadthFirst}) {
      SearchOptions opts;
      opts.strategy = s;
      opts.max_expansions = 500000;
      const auto r = gcr::search::find_path(space, start, opts);
      std::printf("%-14s %10zu %12zu %10zu %8s  (scramble %d)\n",
                  std::string(to_string(s)).c_str(),
                  r.found ? r.path.size() - 1 : 0, r.stats.nodes_expanded,
                  r.stats.nodes_generated, r.found ? "yes" : "no",
                  difficulty);
    }
  }
  std::puts("\n(A* expands a fraction of the blind searches' nodes — the same"
            "\n effect the gridless router exploits on the routing plane)");
  return 0;
}
