// Quickstart: build a small general-cell layout, route one net gridlessly,
// and print the result — the five-minute tour of the public API.
//
//   $ ./quickstart
//
// Steps: (1) describe the layout (cells, pins, a net), (2) validate the
// placement rules, (3) build the spatial structures, (4) route with the
// gridless A* line search, (5) inspect the path and search statistics.

#include <cstdio>

#include "core/gridless_router.hpp"
#include "core/steiner.hpp"
#include "layout/layout.hpp"

int main() {
  using namespace gcr;
  using geom::Point;
  using geom::Rect;

  // 1. A 200x160 routing region with three rectangular macros.
  layout::Layout chip(Rect{0, 0, 200, 160});
  chip.set_min_separation(8);
  const auto alu = chip.add_cell(layout::Cell{"alu", Rect{20, 20, 80, 90}});
  const auto rom = chip.add_cell(layout::Cell{"rom", Rect{100, 40, 150, 120}});
  const auto io = chip.add_cell(layout::Cell{"io", Rect{160, 20, 190, 60}});

  // Pins live on cell boundaries; a net ties three terminals together.
  chip.cell(alu).add_pin_terminal("out", Point{80, 60});
  chip.cell(rom).add_pin_terminal("in", Point{100, 80});
  chip.cell(io).add_pin_terminal("d0", Point{160, 40});
  layout::Net net("data0");
  net.add_terminal(layout::TerminalRef{alu, 0});
  net.add_terminal(layout::TerminalRef{rom, 0});
  net.add_terminal(layout::TerminalRef{io, 0});
  chip.add_net(std::move(net));

  // 2. Placement-rule validation (rectangular, orthogonal, separated).
  for (const auto& issue : chip.validate()) {
    std::printf("validation: %s — %s\n",
                std::string(layout::to_string(issue.kind)).c_str(),
                issue.detail.c_str());
  }
  if (!chip.valid()) return 1;

  // 3. Spatial structures: the obstacle index (ray tracing) and the escape
  //    lines (where optimal routes bend).
  const spatial::ObstacleIndex index(chip.boundary(), chip.obstacles());
  const spatial::EscapeLineSet lines(index);
  std::printf("obstacles: %zu, escape lines: %zu\n", index.size(),
              lines.lines().size());

  // 4. Route the net: the Steiner builder grows a tree, each connection
  //    found by the gridless A* line search.
  const route::SteinerNetRouter router(index, lines);
  const route::NetRoute result = router.route_net(chip, chip.nets()[0]);
  if (!result.ok) {
    std::puts("routing failed");
    return 1;
  }

  // 5. Inspect.
  std::printf("routed net 'data0': wirelength %lld dbu, %zu tree segments, "
              "%zu nodes expanded\n",
              static_cast<long long>(result.wirelength),
              result.segments.size(), result.stats.nodes_expanded);
  for (const auto& seg : result.segments) {
    std::printf("  wire (%lld,%lld) -> (%lld,%lld)\n",
                static_cast<long long>(seg.a.x), static_cast<long long>(seg.a.y),
                static_cast<long long>(seg.b.x), static_cast<long long>(seg.b.y));
  }
  return 0;
}
