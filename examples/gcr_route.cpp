// gcr_route — command-line global router.
//
//   $ gcr_route chip.txt [options]
//     --mode independent|sequential|twopass   (default independent)
//     --svg FILE          write an SVG of the routed chip
//     --routes FILE       write the route dump
//     --verify            run the independent route verifier
//     --feedback          run the placement-adjustment feedback loop first
//     --stats             print per-net statistics
//     --threads N         batch-route independent nets on N workers
//                         (0 = one per hardware thread; default 1)
//
// Reads a layout in the text interchange format (see io/text_format.hpp),
// routes every net with the gridless A* global router, and reports.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "congestion/two_pass.hpp"
#include "io/route_dump.hpp"
#include "io/svg.hpp"
#include "io/text_format.hpp"
#include "placement/feedback_loop.hpp"
#include "verify/route_verifier.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s layout.txt [--mode independent|sequential|twopass]\n"
               "       [--svg FILE] [--routes FILE] [--verify] [--feedback]\n"
               "       [--stats] [--threads N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcr;
  if (argc < 2) return usage(argv[0]);

  std::string mode = "independent";
  std::string svg_file, routes_file;
  bool do_verify = false, do_feedback = false, do_stats = false;
  unsigned threads = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      mode = v;
    } else if (arg == "--svg") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      svg_file = v;
    } else if (arg == "--routes") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      routes_file = v;
    } else if (arg == "--verify") {
      do_verify = true;
    } else if (arg == "--feedback") {
      do_feedback = true;
    } else if (arg == "--stats") {
      do_stats = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || v[0] == '-' || parsed > 1024) {
        std::fprintf(stderr, "--threads: expected a count in [0, 1024]\n");
        return usage(argv[0]);
      }
      threads = static_cast<unsigned>(parsed);
    } else {
      return usage(argv[0]);
    }
  }

  // --- Load and validate.
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  layout::Layout chip;
  try {
    chip = io::read_layout(in);
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.what());
    return 1;
  }
  const auto issues = chip.validate();
  for (const auto& issue : issues) {
    std::fprintf(stderr, "layout: %.*s — %s\n",
                 static_cast<int>(layout::to_string(issue.kind).size()),
                 layout::to_string(issue.kind).data(), issue.detail.c_str());
  }
  if (!issues.empty()) return 1;
  std::printf("%s: %zu cells, %zu pins, %zu nets\n", argv[1],
              chip.cells().size(), chip.pin_count(), chip.nets().size());

  // --- Optional placement feedback.
  if (do_feedback) {
    const auto report = placement::run_feedback(chip);
    std::printf("feedback: %zu iterations, %s\n", report.iterations,
                report.converged ? "converged" : "NOT converged");
    chip = report.final_layout;
  }

  // --- Route.
  if (threads != 1 && mode != "independent") {
    std::fprintf(stderr,
                 "note: --threads only parallelizes independent mode; "
                 "%s mode runs serially\n",
                 mode.c_str());
  }
  const auto t0 = std::chrono::steady_clock::now();
  route::NetlistResult result;
  if (mode == "twopass") {
    const congestion::TwoPassRouter router(chip);
    const auto rep = router.run();
    std::printf("two-pass: overflow %zu -> %zu, %zu nets rerouted\n",
                rep.overflow_before, rep.overflow_after, rep.nets_rerouted);
    result = rep.final_pass;
  } else {
    route::NetlistOptions opts;
    opts.threads = threads;
    if (mode == "sequential") {
      opts.mode = route::NetlistMode::kSequential;
    } else if (mode != "independent") {
      return usage(argv[0]);
    }
    const route::NetlistRouter router(chip);
    result = router.route_all(opts);
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::printf("routed %zu/%zu nets, wirelength %lld, %.1f ms, "
              "%zu nodes expanded\n",
              result.routed, chip.nets().size(),
              static_cast<long long>(result.total_wirelength), ms,
              result.stats.nodes_expanded);

  if (do_stats) {
    std::printf("%-16s %10s %10s %8s %10s\n", "net", "wirelength", "segments",
                "bends", "expanded");
    for (std::size_t n = 0; n < result.routes.size(); ++n) {
      const auto& nr = result.routes[n];
      std::size_t bends = 0;
      for (const auto& conn : nr.connections) bends += conn.bend_count();
      std::printf("%-16s %10lld %10zu %8zu %10zu%s\n",
                  chip.nets()[n].name().c_str(),
                  static_cast<long long>(nr.wirelength), nr.segments.size(),
                  bends, nr.stats.nodes_expanded, nr.ok ? "" : "  FAILED");
    }
  }

  // --- Verify / export.
  int exit_code = 0;
  if (do_verify) {
    const auto violations = verify::verify_routes(chip, result);
    if (violations.empty()) {
      std::puts("verify: clean");
    } else {
      for (const auto& v : violations) {
        std::printf("verify: net %zu %.*s — %s\n", v.net,
                    static_cast<int>(verify::to_string(v.kind).size()),
                    verify::to_string(v.kind).data(), v.detail.c_str());
      }
      exit_code = 1;
    }
  }
  if (!routes_file.empty()) {
    std::ofstream out(routes_file);
    io::write_routes(out, chip, result);
    std::printf("wrote %s\n", routes_file.c_str());
  }
  if (!svg_file.empty()) {
    if (io::save_svg(svg_file, chip, &result)) {
      std::printf("wrote %s\n", svg_file.c_str());
    }
  }
  return exit_code;
}
