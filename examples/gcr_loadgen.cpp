// gcr_loadgen — closed-loop load generator for the routing service.
//
// Two modes:
//
//   in-process (default): builds a RoutingService and hammers it from N
//   client threads, each issuing requests back-to-back (closed loop: the
//   next request leaves when the previous response lands).  Measures
//   end-to-end requests/sec against worker count and prints the service's
//   own STATS counters.
//
//   --server PATH: forks PATH (gcr_serve) and drives it over a real
//   transport — a socketpair by default, or the daemon's stdin/stdout
//   pipes with --transport pipe — exercising the framed protocol
//   end-to-end: LOAD, pipelined ROUTEs, STATS, QUIT.  Every ROUTE response
//   body is parsed back (io::read_routes) and cross-checked against an
//   in-process reference route of the same layout, so this doubles as the
//   protocol round-trip test.
//
//   --server PATH --tcp: forks PATH with --listen 0, parses the bound port
//   from its banner, and opens N *concurrent TCP connections* (one per
//   client thread), each issuing closed-loop ROUTEs against the shared
//   session.  Every response is cross-checked against the in-process
//   reference and per-client latency percentiles plus an aggregate
//   histogram are reported; at the end the server is sent SIGINT and must
//   drain and exit cleanly.  This is the end-to-end proof of the epoll
//   front-end: many clients, one worker pool, zero mismatches.
//
//   --gen (with --server): clients synthesize their workload *server-side*
//   with the GEN verb instead of shipping a LOAD body — each TCP client
//   from a distinct seed — and cross-check the returned session key
//   against an identical client-side generation (GEN is deterministic, so
//   the content-addressed key is predictable before the request is sent).
//   Every client closes with one DETAIL and one VERIFY round trip whose
//   meta and body must match an in-process pipeline-stage run exactly.
//
//   --restart-dir DIR (with --server): restart-under-load smoke — PIN a
//   session, COMMIT every net, SAVE into DIR, SIGINT-drain the server,
//   restart it with --restore-dir DIR, claim the same handle, and verify
//   the rehydrated pin answers the same REROUTE byte-identically.
//
//   --stats-out FILE (with --tcp): before shutting the server down, a
//   control connection fetches STATS and TRACE and FILE gets a JSON
//   report: every server STATS counter, the TRACE dump, and the client
//   side's own per-verb latency aggregates.  The server's counters are
//   cross-checked against what the clients observed (counter conservation,
//   per-verb counts), so the artifact doubles as an end-to-end audit.
//
//   $ gcr_loadgen --clients 8 --requests 16 --workers 4
//   $ gcr_loadgen --server ./example_gcr_serve --requests 8 --gen
//   $ gcr_loadgen --server ./example_gcr_serve --tcp --clients 16
//
// With --optimize, every client finishes with one OPTIMIZE request: the
// streamed PASS lines must match an in-process Optimizer run exactly (and
// be non-increasing), and the final dump must parse back to its result.
//
// The workload is a seeded workload::floorplan netlist, so runs are
// reproducible and the reference comparison is exact.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/netlist_router.hpp"
#include "core/optimize.hpp"
#include "core/search_environment.hpp"
#include "io/route_dump.hpp"
#include "io/text_format.hpp"
#include "net/socket.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/stage_runner.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "serve/routing_service.hpp"
#include "workload/netgen.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#define GCR_LOADGEN_HAVE_FORK 1
#else
#define GCR_LOADGEN_HAVE_FORK 0
#endif

#if defined(__linux__)
#include <fcntl.h>
#include <sys/epoll.h>
#define GCR_LOADGEN_HAVE_EPOLL 1
#else
#define GCR_LOADGEN_HAVE_EPOLL 0
#endif

namespace {

using namespace gcr;

struct Config {
  std::string server;  // empty = in-process
  bool pipe_transport = false;
  bool tcp = false;  // fork the server with --listen and fan out over TCP
  std::size_t clients = 4;
  std::size_t requests = 8;  // per client
  std::size_t workers = 0;   // 0 = hardware threads
  std::size_t cells = 16;
  std::size_t nets = 24;
  std::uint64_t seed = 42;
  long deadline_ms = -1;  // <0 = none
  bool optimize = false;  // finish every client with one OPTIMIZE
  bool gen = false;       // synthesize the workload server-side (GEN verb)
  /// Non-empty = restart-under-load smoke: pin a session on a first server,
  /// SAVE into this directory, SIGINT-drain the server, start a second one
  /// with --restore-dir, and verify the rehydrated pin answers the same
  /// REROUTE byte-identically.
  std::string restart_dir;
  /// Non-empty (TCP mode): write a JSON audit — server STATS + TRACE next
  /// to the clients' own per-verb aggregates — to this path before the
  /// server is shut down.
  std::string stats_out;
  /// TCP mode: fork the server with --reactors N (SO_REUSEPORT event-loop
  /// shards); 1 = the single-loop build the responses are differenced
  /// against.
  std::size_t reactors = 1;
  /// Open-loop mode (--tcp only): instead of closed-loop request/response
  /// clients, pace ROUTEs at fixed offered rates over many pipelined
  /// connections and measure the p99-vs-offered-load curve.
  bool open_loop = false;
  std::string offered = "200,400,800";  // req/s steps, comma-separated
  std::size_t conns = 64;               // open-loop connection count
  double step_s = 2.0;                  // seconds per offered-load step
  std::string curve_out;                // JSON curve artifact path
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--server PATH [--transport socket|pipe] [--tcp]]\n"
      "       [--clients N] [--requests N] [--workers N] [--reactors N]\n"
      "       [--cells N] [--nets N] [--seed S] [--deadline-ms N]\n"
      "       [--optimize] [--gen] [--restart-dir DIR] [--stats-out FILE]\n"
      "       [--open-loop [--offered R1,R2,..] [--conns N] [--step-s S]\n"
      "        [--curve-out FILE]]\n",
      argv0);
  return 2;
}

layout::Layout gen_workload(const Config& cfg, std::uint64_t seed) {
  return workload::standard_workload(cfg.cells, 640, cfg.nets, seed);
}

layout::Layout make_workload(const Config& cfg) {
  return gen_workload(cfg, cfg.seed);
}

/// The GEN command mirroring gen_workload: the server must synthesize a
/// byte-identical layout from the same seed, so the session key in its
/// reply is predictable before the request leaves.
std::string gen_command(const Config& cfg, std::uint64_t seed) {
  return "GEN standard seed=" + std::to_string(seed) +
         " cells=" + std::to_string(cfg.cells) +
         " extent=640 nets=" + std::to_string(cfg.nets);
}

// ------------------------------------------------------------ protocol client

struct Reply {
  bool ok = false;
  std::string meta;  // status line after "OK <n> "
  std::string body;
  std::string error;
};

/// Sends one framed request and reads one framed response.
Reply transact(std::ostream& out, std::istream& in, const std::string& line,
               const std::string& body = std::string()) {
  Reply r;
  out << line << '\n' << body;
  out.flush();
  std::string status;
  if (!std::getline(in, status)) {
    r.error = "connection closed before response";
    return r;
  }
  if (!status.empty() && status.back() == '\r') status.pop_back();
  std::istringstream is(status);
  std::string kw;
  is >> kw;
  if (kw == "ERR") {
    std::getline(is, r.error);
    return r;
  }
  if (kw != "OK") {
    r.error = "malformed status line: " + status;
    return r;
  }
  std::size_t nbytes = 0;
  if (!(is >> nbytes)) {
    r.error = "missing body byte count: " + status;
    return r;
  }
  std::getline(is >> std::ws, r.meta);
  r.body.resize(nbytes);
  in.read(r.body.data(), static_cast<std::streamsize>(nbytes));
  if (static_cast<std::size_t>(in.gcount()) != nbytes) {
    r.error = "truncated response body";
    return r;
  }
  r.ok = true;
  return r;
}

/// Pulls `key=value` out of a response meta string; -1 when absent or not
/// numeric.  Values may be non-numeric (the session key), so everything is
/// scanned as tokens and only the requested one is converted.
long long meta_value(const std::string& meta, const std::string& key) {
  std::istringstream is(meta);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || tok.compare(0, eq, key) != 0) continue;
    try {
      return std::stoll(tok.substr(eq + 1));
    } catch (const std::exception&) {
      return -1;
    }
  }
  return -1;
}

/// Raw value of `key=` in a meta string ("" when absent) — for the
/// non-numeric values (session key, pin handle) meta_value cannot carry.
std::string meta_token(const std::string& meta, const std::string& key) {
  std::istringstream is(meta);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos && tok.compare(0, eq, key) == 0) {
      return tok.substr(eq + 1);
    }
  }
  return std::string();
}

/// One OPTIMIZE round trip: PASS progress lines stream ahead of the final
/// frame, so the reader loops on lines until the first non-PASS status.
struct OptimizeReply {
  Reply reply;
  std::vector<route::OptimizePassStats> passes;
};

OptimizeReply transact_optimize(std::ostream& out, std::istream& in,
                                const std::string& line) {
  OptimizeReply r;
  out << line << '\n';
  out.flush();
  std::string status;
  for (;;) {
    if (!std::getline(in, status)) {
      r.reply.error = "connection closed before response";
      return r;
    }
    if (!status.empty() && status.back() == '\r') status.pop_back();
    if (status.rfind("PASS ", 0) != 0) break;
    route::OptimizePassStats p;
    unsigned long long wl = 0, of = 0;
    std::size_t pass = 0;
    if (std::sscanf(status.c_str(), "PASS %zu wirelength=%llu overflow=%llu",
                    &pass, &wl, &of) != 3) {
      r.reply.error = "malformed PASS line: " + status;
      return r;
    }
    p.pass = pass;
    p.wirelength = static_cast<geom::Cost>(wl);
    p.overflow = static_cast<std::size_t>(of);
    r.passes.push_back(p);
  }
  std::istringstream is(status);
  std::string kw;
  is >> kw;
  if (kw == "ERR") {
    std::getline(is, r.reply.error);
    return r;
  }
  if (kw != "OK") {
    r.reply.error = "malformed status line: " + status;
    return r;
  }
  std::size_t nbytes = 0;
  if (!(is >> nbytes)) {
    r.reply.error = "missing body byte count: " + status;
    return r;
  }
  std::getline(is >> std::ws, r.reply.meta);
  r.reply.body.resize(nbytes);
  in.read(r.reply.body.data(), static_cast<std::streamsize>(nbytes));
  if (static_cast<std::size_t>(in.gcount()) != nbytes) {
    r.reply.error = "truncated response body";
    return r;
  }
  r.reply.ok = true;
  return r;
}

/// Cross-checks an OPTIMIZE reply against the in-process reference run:
/// one PASS line per recorded pass, values exact and non-increasing, final
/// dump parsing back to the reference result.  Empty string = good.
std::string check_optimize(const OptimizeReply& r, const layout::Layout& lay,
                           const route::OptimizeReport& want) {
  if (!r.reply.ok) return "OPTIMIZE: " + r.reply.error;
  if (r.passes.empty()) return "OPTIMIZE: no PASS lines streamed";
  if (r.passes.size() != want.passes.size()) {
    return "OPTIMIZE: streamed " + std::to_string(r.passes.size()) +
           " passes, reference ran " + std::to_string(want.passes.size());
  }
  for (std::size_t i = 0; i < r.passes.size(); ++i) {
    if (r.passes[i].pass != i + 1 ||
        r.passes[i].wirelength != want.passes[i].wirelength ||
        r.passes[i].overflow != want.passes[i].overflow) {
      return "OPTIMIZE: PASS " + std::to_string(i + 1) +
             " mismatch vs reference";
    }
    if (i > 0 && (r.passes[i].wirelength > r.passes[i - 1].wirelength ||
                  r.passes[i].overflow > r.passes[i - 1].overflow)) {
      return "OPTIMIZE: pass curve not non-increasing";
    }
  }
  try {
    const route::NetlistResult parsed = io::read_routes_string(r.reply.body, lay);
    if (parsed.total_wirelength != want.result.total_wirelength ||
        parsed.routed != want.result.routed) {
      return "OPTIMIZE: final dump mismatch vs reference";
    }
  } catch (const std::exception& e) {
    return std::string("OPTIMIZE: dump unparsable: ") + e.what();
  }
  return std::string();
}

/// Cross-checks a DETAIL/VERIFY reply against an in-process stage run over
/// the reference route: the reply meta must carry the stage's own meta and
/// the body must match byte-for-byte.  Empty string = good.
std::string check_stage(const Reply& r, pipeline::StageKind kind,
                        const layout::Layout& lay,
                        const route::NetlistResult& reference) {
  const std::string name{pipeline::to_string(kind)};
  if (!r.ok) return name + ": " + r.error;
  route::SearchEnvironment env(lay);
  pipeline::StageOptions sopts;
  sopts.kind = kind;
  const pipeline::StageContext ctx{lay, env, reference, nullptr, {}};
  const pipeline::StageOutcome want = pipeline::run_stage(ctx, sopts);
  if (!want.result) return name + ": reference stage did not complete";
  const std::string prefix = "stage=" + name + " cached=";
  if (r.meta.rfind(prefix, 0) != 0) {
    return name + ": meta missing '" + prefix + "': " + r.meta;
  }
  if (!want.result->meta.empty() &&
      r.meta.find(want.result->meta) == std::string::npos) {
    return name + ": meta mismatch (want '" + want.result->meta + "', got '" +
           r.meta + "')";
  }
  if (r.body != want.result->body) return name + ": body mismatch";
  return std::string();
}

// ------------------------------------------------------------ in-process mode

int run_inproc(const Config& cfg, const std::string& layout_text,
               const route::NetlistResult& reference) {
  serve::RoutingService::Options sopts;
  sopts.workers = cfg.workers;
  sopts.queue_capacity = std::max<std::size_t>(cfg.clients * 2, 64);
  serve::RoutingService service(sopts);

  const auto session = service.load(layout_text);
  std::printf("session %s: %zu cells, %zu nets, %zu workers\n",
              session->key.c_str(), session->layout.cells().size(),
              session->layout.nets().size(), service.worker_count());

  // In-process OPTIMIZE reference: the service must reproduce it exactly
  // (same engine, cached environment, no builds).
  std::optional<route::OptimizeReport> optref;
  if (cfg.optimize) optref = route::Optimizer(session->layout).run();

  std::vector<std::size_t> ok_counts(cfg.clients, 0);
  std::vector<std::size_t> bad_counts(cfg.clients, 0);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(cfg.clients);
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t q = 0; q < cfg.requests; ++q) {
          serve::RouteRequest req;
          req.session_key = session->key;
          if (cfg.deadline_ms >= 0) {
            req.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(cfg.deadline_ms);
          }
          const serve::RouteResponse resp = service.route(std::move(req));
          const bool good =
              resp.ok() &&
              resp.result.total_wirelength == reference.total_wirelength &&
              resp.result.routed == reference.routed;
          (good ? ok_counts : bad_counts)[c] += 1;
        }
        if (cfg.optimize) {
          serve::RouteRequest req;
          req.session_key = session->key;
          req.optimize = true;
          const serve::RouteResponse resp = service.route(std::move(req));
          const bool good =
              resp.ok() && resp.passes.size() == optref->passes.size() &&
              resp.result.total_wirelength ==
                  optref->result.total_wirelength &&
              resp.result.routed == optref->result.routed;
          (good ? ok_counts : bad_counts)[c] += 1;
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::size_t ok = 0, bad = 0;
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    ok += ok_counts[c];
    bad += bad_counts[c];
  }
  const std::size_t total = ok + bad;
  std::printf("%zu requests (%zu clients x %zu), %.3f s, %.1f req/s, "
              "%zu mismatched/failed\n",
              total, cfg.clients, cfg.requests, secs,
              secs > 0 ? static_cast<double>(total) / secs : 0.0, bad);
  std::fputs(service.stats_text().c_str(), stdout);
  return bad == 0 ? 0 : 1;
}

// ------------------------------------------------------------ forked server

#if GCR_LOADGEN_HAVE_FORK

struct Child {
  pid_t pid = -1;
  int read_fd = -1;   // responses arrive here
  int write_fd = -1;  // requests go here
};

/// Forks \p cfg.server speaking the protocol over a socketpair (--fd) or
/// over its stdin/stdout pipes.  Returns pid -1 on failure.
Child spawn_server(const Config& cfg) {
  Child child;
  std::vector<std::string> args{cfg.server, "--workers",
                                std::to_string(cfg.workers)};
  if (!cfg.pipe_transport) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return child;
    const pid_t pid = ::fork();
    if (pid < 0) return child;
    if (pid == 0) {
      ::close(sv[0]);
      // Pin the service end to a known descriptor for --fd.
      if (::dup2(sv[1], 3) < 0) _exit(127);
      if (sv[1] != 3) ::close(sv[1]);
      args.insert(args.end(), {"--fd", "3"});
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
    ::close(sv[1]);
    child.pid = pid;
    child.read_fd = child.write_fd = sv[0];
    return child;
  }
  int to_child[2], from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return child;
  const pid_t pid = ::fork();
  if (pid < 0) return child;
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  child.pid = pid;
  child.read_fd = from_child[0];
  child.write_fd = to_child[1];
  return child;
}

int run_against_server(const Config& cfg, const std::string& layout_text,
                       const layout::Layout& lay,
                       const route::NetlistResult& reference) {
  const Child child = spawn_server(cfg);
  if (child.pid < 0) {
    std::fprintf(stderr, "loadgen: cannot spawn %s\n", cfg.server.c_str());
    return 1;
  }
  std::printf("spawned %s (pid %d, %s transport)\n", cfg.server.c_str(),
              static_cast<int>(child.pid),
              cfg.pipe_transport ? "pipe" : "socketpair");

  int failures = 0;
  {
    serve::FdTransport transport(child.read_fd, child.write_fd);
    std::istream& in = transport.in();
    std::ostream& out = transport.out();

    const std::string key = serve::SessionCache::content_key(layout_text);
    if (cfg.gen) {
      // GEN twice: deterministic synthesis means the second request dedups
      // into the first session (cached=1), and the key matches the
      // client-side generation of the same seed.
      for (int attempt = 0; attempt < 2; ++attempt) {
        const Reply r = transact(out, in, gen_command(cfg, cfg.seed));
        if (!r.ok) {
          std::fprintf(stderr, "GEN failed: %s\n", r.error.c_str());
          return 1;
        }
        if (meta_token(r.meta, "session") != key) {
          std::fprintf(stderr,
                       "GEN attempt %d: key mismatch vs client-side "
                       "generation (%s)\n",
                       attempt, r.meta.c_str());
          ++failures;
        }
        const long long cached = meta_value(r.meta, "cached");
        if (cached != (attempt == 0 ? 0 : 1)) {
          std::fprintf(stderr, "GEN attempt %d: unexpected cached=%lld\n",
                       attempt, cached);
          ++failures;
        }
      }
    } else {
      // LOAD twice: the second must be a cache hit (no rebuild server-side).
      for (int attempt = 0; attempt < 2; ++attempt) {
        const Reply r = transact(
            out, in, "LOAD " + std::to_string(layout_text.size()),
            layout_text);
        if (!r.ok) {
          std::fprintf(stderr, "LOAD failed: %s\n", r.error.c_str());
          return 1;
        }
        const long long cached = meta_value(r.meta, "cached");
        if (cached != (attempt == 0 ? 0 : 1)) {
          std::fprintf(stderr, "LOAD attempt %d: unexpected cached=%lld\n",
                       attempt, cached);
          ++failures;
        }
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::string route_line = "ROUTE " + key;
    if (cfg.deadline_ms >= 0) {
      route_line += " deadline_ms=" + std::to_string(cfg.deadline_ms);
    }
    const std::size_t total = cfg.requests * std::max<std::size_t>(cfg.clients, 1);
    for (std::size_t q = 0; q < total; ++q) {
      const Reply r = transact(out, in, route_line);
      if (!r.ok) {
        std::fprintf(stderr, "ROUTE %zu failed: %s\n", q, r.error.c_str());
        ++failures;
        continue;
      }
      // Round trip: the dump must parse against the layout and reproduce
      // the in-process reference exactly.
      try {
        const route::NetlistResult parsed = io::read_routes_string(r.body, lay);
        if (parsed.total_wirelength != reference.total_wirelength ||
            parsed.routed != reference.routed ||
            meta_value(r.meta, "wirelength") !=
                static_cast<long long>(reference.total_wirelength)) {
          std::fprintf(stderr, "ROUTE %zu: result mismatch vs reference\n", q);
          ++failures;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ROUTE %zu: dump unparsable: %s\n", q, e.what());
        ++failures;
      }
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::printf("%zu round trips, %.3f s, %.1f req/s, %d failures\n", total,
                secs, secs > 0 ? static_cast<double>(total) / secs : 0.0,
                failures);

    if (cfg.optimize) {
      const route::OptimizeReport optref = route::Optimizer(lay).run();
      const OptimizeReply orep =
          transact_optimize(out, in, "OPTIMIZE " + key);
      const std::string err = check_optimize(orep, lay, optref);
      if (err.empty()) {
        std::printf("OPTIMIZE: %zu passes streamed, final wirelength %lld\n",
                    orep.passes.size(),
                    static_cast<long long>(optref.result.total_wirelength));
      } else {
        std::fprintf(stderr, "%s\n", err.c_str());
        ++failures;
      }
    }

    if (cfg.gen) {
      // One DETAIL and one VERIFY round trip, each checked against an
      // in-process pipeline-stage run over the reference route.
      for (const pipeline::StageKind kind :
           {pipeline::StageKind::kDetail, pipeline::StageKind::kVerify}) {
        const std::string verb =
            kind == pipeline::StageKind::kDetail ? "DETAIL" : "VERIFY";
        const Reply r = transact(out, in, verb + " " + key);
        const std::string err = check_stage(r, kind, lay, reference);
        if (!err.empty()) {
          std::fprintf(stderr, "%s\n", err.c_str());
          ++failures;
        }
      }
    }

    const Reply stats = transact(out, in, "STATS");
    if (stats.ok) {
      std::fputs(stats.body.c_str(), stdout);
    } else {
      std::fprintf(stderr, "STATS failed: %s\n", stats.error.c_str());
      ++failures;
    }
    const Reply bye = transact(out, in, "QUIT");
    if (!bye.ok) ++failures;
  }
  ::close(child.write_fd);
  if (child.read_fd != child.write_fd) ::close(child.read_fd);

  int status = 0;
  ::waitpid(child.pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "server exited abnormally (status %d)\n", status);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------ TCP fan-out

struct TcpChild {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks \p cfg.server with `--listen 0` and parses the bound port from its
/// stdout banner ("gcr_serve: listening on 127.0.0.1:<port>").
TcpChild spawn_tcp_server(const Config& cfg,
                          const std::vector<std::string>& extra = {}) {
  TcpChild child;
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) return child;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return child;
  }
  if (pid == 0) {
    ::dup2(out_pipe[1], 1);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<std::string> args{cfg.server, "--workers",
                                  std::to_string(cfg.workers), "--listen",
                                  "0"};
    if (cfg.reactors > 1) {
      args.insert(args.end(), {"--reactors", std::to_string(cfg.reactors)});
    }
    if (cfg.gen) {
      // Distinct per-client seeds mean distinct sessions; the cache must
      // hold them all or mid-run eviction would fail later ROUTEs.
      args.insert(args.end(),
                  {"--cache", std::to_string(std::max<std::size_t>(
                                  cfg.clients * 2, 8))});
    }
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(out_pipe[1]);
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos &&
         ::read(out_pipe[0], &c, 1) == 1) {
    banner.push_back(c);
  }
  ::close(out_pipe[0]);
  const std::size_t colon = banner.rfind(':');
  if (colon != std::string::npos) {
    const long port = std::strtol(banner.c_str() + colon + 1, nullptr, 10);
    if (port > 0 && port <= 65535) {
      child.pid = pid;
      child.port = static_cast<std::uint16_t>(port);
      return child;
    }
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return child;
}

/// Nearest-rank percentile of an (unsorted) latency sample, microseconds:
/// the ceil(q/100 * N)-th smallest value.
double percentile_us(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto nth = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(v.size())));
  return v[nth == 0 ? 0 : std::min(v.size(), nth) - 1];
}

/// Fetches STATS + TRACE over a fresh control connection, cross-checks the
/// server's counters against the clients' observations, and writes the
/// combined JSON audit to cfg.stats_out.  Returns the number of
/// cross-check failures.
int write_stats_audit(const Config& cfg, std::uint16_t port,
                      std::map<std::string, std::vector<double>>& verb_lat,
                      std::size_t client_ok, std::size_t client_bad) {
  std::string stats_body, trace_body;
  {
    const net::ScopedFd sock = net::tcp_connect(port);
    serve::FdTransport transport(sock.get());
    const Reply stats = transact(transport.out(), transport.in(), "STATS");
    const Reply trace = transact(transport.out(), transport.in(), "TRACE");
    transact(transport.out(), transport.in(), "QUIT");
    if (!stats.ok || !trace.ok) {
      std::fprintf(stderr, "stats audit: control connection failed (%s%s)\n",
                   stats.error.c_str(), trace.error.c_str());
      return 1;
    }
    stats_body = stats.body;
    trace_body = trace.body;
  }

  // `<key> <value>` per line, every value numeric.
  std::map<std::string, long long> server;
  {
    std::istringstream is(stats_body);
    std::string k;
    long long v = 0;
    while (is >> k >> v) server[k] = v;
  }
  const auto counter = [&server](const char* key) {
    const auto it = server.find(key);
    return it == server.end() ? -1 : it->second;
  };

  int failures = 0;
  // Counter conservation: every admitted request ended in exactly one
  // terminal state.  The control connection's own STATS/TRACE are answered
  // inline (never submitted), so the equality is exact even now.
  const long long submitted = counter("requests_submitted");
  const long long terminal =
      counter("requests_ok") + counter("requests_rejected") +
      counter("requests_expired") + counter("requests_cancelled") +
      counter("requests_not_found") + counter("requests_errored");
  if (submitted < 0 || submitted != terminal) {
    std::fprintf(stderr,
                 "stats audit: counter conservation violated "
                 "(submitted=%lld, terminal sum=%lld)\n",
                 submitted, terminal);
    ++failures;
  }
  // Per-verb counts: the server's ROUTE shard must account for at least
  // every ROUTE round trip a client completed (crashed clients may have
  // sent fewer, never more).
  const auto check_verb = [&](const char* verb, const char* stat_key) {
    const auto it = verb_lat.find(verb);
    const long long sent =
        it == verb_lat.end() ? 0 : static_cast<long long>(it->second.size());
    if (counter(stat_key) < sent) {
      std::fprintf(stderr, "stats audit: %s %lld < %lld %s round trips\n",
                   stat_key, counter(stat_key), sent, verb);
      ++failures;
    }
  };
  check_verb("ROUTE", "verb_route_count");
  check_verb("REROUTE", "verb_reroute_count");
  check_verb("OPTIMIZE", "verb_optimize_count");
  check_verb("GEN", "verb_gen_count");

  std::ofstream os(cfg.stats_out);
  if (!os) {
    std::fprintf(stderr, "stats audit: cannot write %s\n",
                 cfg.stats_out.c_str());
    return failures + 1;
  }
  os << "{\n  \"server_stats\": {";
  bool first = true;
  for (const auto& [k, v] : server) {
    os << (first ? "\n" : ",\n") << "    \"" << k << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"trace\": [";
  {
    std::istringstream is(trace_body);
    std::string line;
    first = true;
    while (std::getline(is, line)) {
      os << (first ? "\n" : ",\n") << "    \"" << line << '"';
      first = false;
    }
  }
  os << "\n  ],\n  \"client\": {\n    \"connections\": " << cfg.clients
     << ",\n    \"ok\": " << client_ok << ",\n    \"failed\": " << client_bad
     << ",\n    \"verbs\": {";
  first = true;
  for (auto& [verb, v] : verb_lat) {
    const double mx = v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    os << (first ? "\n" : ",\n") << "      \"" << verb
       << "\": {\"count\": " << v.size() << ", \"p50_us\": "
       << static_cast<long long>(percentile_us(v, 50)) << ", \"p95_us\": "
       << static_cast<long long>(percentile_us(v, 95)) << ", \"max_us\": "
       << static_cast<long long>(mx) << '}';
    first = false;
  }
  os << "\n    }\n  },\n  \"conservation\": {\"submitted\": " << submitted
     << ", \"terminal_sum\": " << terminal
     << ", \"holds\": " << (submitted == terminal ? "true" : "false")
     << "}\n}\n";
  std::printf("stats audit written to %s (%d cross-check failure%s)\n",
              cfg.stats_out.c_str(), failures, failures == 1 ? "" : "s");
  return failures;
}

int run_tcp(const Config& cfg, const std::string& layout_text,
            const layout::Layout& lay, const route::NetlistResult& reference) {
  std::signal(SIGPIPE, SIG_IGN);
  const TcpChild child = spawn_tcp_server(cfg);
  if (child.pid < 0) {
    std::fprintf(stderr, "loadgen: cannot spawn %s --listen 0\n",
                 cfg.server.c_str());
    return 1;
  }
  std::printf("spawned %s (pid %d) listening on 127.0.0.1:%u\n",
              cfg.server.c_str(), static_cast<int>(child.pid),
              static_cast<unsigned>(child.port));

  struct ClientResult {
    std::size_t ok = 0;
    std::size_t bad = 0;
    std::vector<double> lat_us;
    /// (verb, round-trip us) for every framed request this client sent —
    /// the per-verb table and the --stats-out audit aggregate these.
    std::vector<std::pair<std::string, double>> verb_us;
    std::string first_error;
  };
  std::vector<ClientResult> results(cfg.clients);
  const std::string key = serve::SessionCache::content_key(layout_text);

  // Rip-up-and-reroute reference: every client finishes with one
  // `REROUTE nets=<first two nets>` whose dump must match this
  // byte-for-byte (the serve path runs the same deterministic driver).
  std::string reroute_line, reroute_body;
  if (!cfg.gen && lay.nets().size() >= 2) {
    route::NetlistOptions ropts;
    ropts.mode = route::NetlistMode::kSequential;
    ropts.reroute = {0, 1};
    const route::NetlistResult rres =
        route::NetlistRouter(lay).route_all(ropts);
    reroute_body = io::write_routes_string(lay, rres, ropts.reroute);
    reroute_line = "REROUTE " + key + " nets=" + lay.nets()[0].name() + "," +
                   lay.nets()[1].name();
  }

  // OPTIMIZE reference: one in-process run; every client's streamed curve
  // and final dump must reproduce it exactly.
  std::optional<route::OptimizeReport> optref;
  if (cfg.optimize) optref = route::Optimizer(lay).run();

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      threads.emplace_back([&, c] {
        ClientResult& res = results[c];
        const auto fail = [&res](const std::string& why) {
          ++res.bad;
          if (res.first_error.empty()) res.first_error = why;
        };
        try {
          // GEN mode: every client synthesizes its own workload server-side
          // from a distinct seed, so its layout, reference route, and
          // session key differ from the shared (seed-0) ones.
          std::optional<layout::Layout> own_lay;
          std::optional<route::NetlistResult> own_ref;
          const layout::Layout* clay = &lay;
          const route::NetlistResult* cref = &reference;
          std::string ckey = key;
          if (cfg.gen) {
            own_lay.emplace(gen_workload(cfg, cfg.seed + c));
            own_ref.emplace(route::NetlistRouter(*own_lay).route_all());
            clay = &*own_lay;
            cref = &*own_ref;
            ckey = serve::SessionCache::content_key(
                io::write_layout_string(*own_lay));
          }

          const net::ScopedFd sock = net::tcp_connect(child.port);
          serve::FdTransport transport(sock.get());
          std::istream& in = transport.in();
          std::ostream& out = transport.out();

          // Every framed round trip lands in the per-verb sample list.
          const auto timed = [&](const char* verb, const std::string& line,
                                 const std::string& body = std::string()) {
            const auto s0 = std::chrono::steady_clock::now();
            Reply r = transact(out, in, line, body);
            res.verb_us.emplace_back(
                verb, std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - s0)
                          .count());
            return r;
          };

          if (cfg.gen) {
            const Reply genned =
                timed("GEN", gen_command(cfg, cfg.seed + c));
            if (!genned.ok) {
              fail("GEN: " + genned.error);
              return;
            }
            if (meta_token(genned.meta, "session") != ckey) {
              fail("GEN: session key mismatch vs client-side generation");
              return;
            }
            ++res.ok;
          } else {
            const Reply loaded = timed(
                "LOAD", "LOAD " + std::to_string(layout_text.size()),
                layout_text);
            if (!loaded.ok) {
              fail("LOAD: " + loaded.error);
              return;
            }
          }
          std::string route_line = "ROUTE " + ckey;
          if (cfg.deadline_ms >= 0) {
            route_line += " deadline_ms=" + std::to_string(cfg.deadline_ms);
          }
          for (std::size_t q = 0; q < cfg.requests; ++q) {
            const Reply r = timed("ROUTE", route_line);
            res.lat_us.push_back(res.verb_us.back().second);
            if (!r.ok) {
              fail("ROUTE: " + r.error);
              continue;
            }
            try {
              const route::NetlistResult parsed =
                  io::read_routes_string(r.body, *clay);
              if (parsed.total_wirelength != cref->total_wirelength ||
                  parsed.routed != cref->routed) {
                fail("ROUTE result mismatch vs reference");
              } else {
                ++res.ok;
              }
            } catch (const std::exception& e) {
              fail(std::string("dump unparsable: ") + e.what());
            }
          }
          if (cfg.gen) {
            // One DETAIL and one VERIFY round trip per client, checked
            // against an in-process stage run over this client's reference.
            for (const pipeline::StageKind kind :
                 {pipeline::StageKind::kDetail,
                  pipeline::StageKind::kVerify}) {
              const std::string verb =
                  kind == pipeline::StageKind::kDetail ? "DETAIL" : "VERIFY";
              const Reply r = timed(verb.c_str(), verb + " " + ckey);
              const std::string err = check_stage(r, kind, *clay, *cref);
              if (err.empty()) {
                ++res.ok;
              } else {
                fail(err);
              }
            }
          }
          if (!reroute_line.empty()) {
            const Reply rr = timed("REROUTE", reroute_line);
            if (!rr.ok) {
              fail("REROUTE: " + rr.error);
            } else if (rr.body != reroute_body) {
              fail("REROUTE dump mismatch vs reference");
            } else {
              ++res.ok;
            }
          }
          if (cfg.optimize) {
            const auto s0 = std::chrono::steady_clock::now();
            const OptimizeReply orep =
                transact_optimize(out, in, "OPTIMIZE " + key);
            res.verb_us.emplace_back(
                "OPTIMIZE", std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - s0)
                                .count());
            const std::string err = check_optimize(orep, lay, *optref);
            if (err.empty()) {
              ++res.ok;
            } else {
              fail(err);
            }
          }
          const Reply bye = transact(out, in, "QUIT");
          if (!bye.ok) fail("QUIT: " + bye.error);
        } catch (const std::exception& e) {
          fail(e.what());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::size_t ok = 0, bad = 0;
  std::vector<double> all_us;
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    ok += results[c].ok;
    bad += results[c].bad;
    all_us.insert(all_us.end(), results[c].lat_us.begin(),
                  results[c].lat_us.end());
  }
  std::printf("%zu TCP round trips (%zu connections x %zu), %.3f s, "
              "%.1f req/s, %zu mismatched/failed\n",
              ok + bad, cfg.clients, cfg.requests, secs,
              secs > 0 ? static_cast<double>(ok + bad) / secs : 0.0, bad);

  // Per-client latency: every connection must see service, not just the
  // aggregate — a starved client hides inside a global histogram.
  std::printf("  %-8s %8s %10s %10s %10s\n", "client", "reqs", "p50_us",
              "p95_us", "max_us");
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    std::vector<double>& v = results[c].lat_us;
    const double mx = v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    std::printf("  %-8zu %8zu %10.0f %10.0f %10.0f\n", c, v.size(),
                percentile_us(v, 50), percentile_us(v, 95), mx);
    if (!results[c].first_error.empty()) {
      std::printf("           first error: %s\n",
                  results[c].first_error.c_str());
    }
  }
  // Aggregate histogram in power-of-two microsecond buckets.
  if (!all_us.empty()) {
    std::vector<std::size_t> buckets;
    for (const double us : all_us) {
      std::size_t b = 0;
      while ((1u << b) < us && b < 31) ++b;
      if (buckets.size() <= b) buckets.resize(b + 1, 0);
      ++buckets[b];
    }
    std::printf("  latency histogram (us, all clients):\n");
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      std::printf("    <= %8u : %zu\n", 1u << b, buckets[b]);
    }
  }

  // Per-verb latency across all clients: STATS shards these server-side,
  // and this table is the client-side view of the same split.
  std::map<std::string, std::vector<double>> verb_lat;
  for (const ClientResult& r : results) {
    for (const auto& [verb, us] : r.verb_us) verb_lat[verb].push_back(us);
  }
  std::printf("  per-verb round-trip latency (all clients):\n");
  std::printf("    %-10s %8s %10s %10s %10s\n", "verb", "count", "p50_us",
              "p95_us", "max_us");
  for (auto& [verb, v] : verb_lat) {
    const double mx = v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    std::printf("    %-10s %8zu %10.0f %10.0f %10.0f\n", verb.c_str(),
                v.size(), percentile_us(v, 50), percentile_us(v, 95), mx);
  }

  int failures = static_cast<int>(bad);

  // --stats-out: one control connection reads the server's own view (STATS
  // + TRACE) while it is still up, cross-checks it against what the
  // clients measured, and archives both sides as JSON.
  if (!cfg.stats_out.empty()) {
    failures += write_stats_audit(cfg, child.port, verb_lat, ok, bad);
  }

  // Graceful shutdown: SIGINT must drain and exit 0.
  ::kill(child.pid, SIGINT);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "server did not shut down cleanly (status %d)\n",
                 status);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------ open loop

#if GCR_LOADGEN_HAVE_EPOLL

/// One pipelined open-loop connection: requests are written on the pacer's
/// schedule regardless of whether earlier responses have arrived, and the
/// framed replies are matched FIFO against their send timestamps.
struct OpenConn {
  net::ScopedFd fd;
  std::string outbuf;                                   // unwritten requests
  std::string inbuf;                                    // unparsed reply bytes
  std::size_t body_left = 0;                            // of current reply
  std::deque<std::chrono::steady_clock::time_point> inflight;
  bool out_armed = false;  // EPOLLOUT currently requested
  bool dead = false;
};

/// One offered-load step's measurements.
struct OpenStep {
  double offered = 0;    // target req/s
  double achieved = 0;   // sent / elapsed
  std::size_t sent = 0;
  std::size_t completed = 0;
  std::size_t errors = 0;  // ERR replies + dead connections
  double p50_us = 0;
  double p99_us = 0;
};

/// Drains fully framed replies out of \p oc.inbuf, recording one latency
/// sample per completed reply.  ERR replies complete their request too —
/// the pacer only cares that the response arrived.
void parse_replies(OpenConn& oc, std::vector<double>& lat_us,
                   std::size_t* completed, std::size_t* errors) {
  for (;;) {
    if (oc.body_left > 0) {
      const std::size_t take = std::min(oc.body_left, oc.inbuf.size());
      oc.inbuf.erase(0, take);
      oc.body_left -= take;
      if (oc.body_left > 0) return;  // need more bytes
      continue;                      // body done; next status line
    }
    const std::size_t nl = oc.inbuf.find('\n');
    if (nl == std::string::npos) return;
    const std::string status = oc.inbuf.substr(0, nl);
    oc.inbuf.erase(0, nl + 1);
    std::istringstream is(status);
    std::string kw;
    std::size_t nbytes = 0;
    is >> kw;
    if (kw == "OK") is >> nbytes;
    oc.body_left = nbytes;
    if (kw == "ERR") ++*errors;
    if (!oc.inflight.empty()) {
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() -
                           oc.inflight.front())
                           .count());
      oc.inflight.pop_front();
      ++*completed;
    }
  }
}

/// Runs one offered-load step: \p total requests paced at \p offered req/s
/// round-robin over \p conns pipelined connections, all sending
/// `ROUTE <key>` against the preloaded shared session.
OpenStep run_open_step(std::uint16_t port, const std::string& request,
                       double offered, double step_s, std::size_t nconns) {
  OpenStep step;
  step.offered = offered;
  const auto total = static_cast<std::size_t>(offered * step_s);

  std::vector<OpenConn> conns(nconns);
  const net::ScopedFd ep(::epoll_create1(EPOLL_CLOEXEC));
  for (std::size_t i = 0; i < nconns; ++i) {
    conns[i].fd = net::tcp_connect(port);
    const int flags = ::fcntl(conns[i].fd.get(), F_GETFL, 0);
    ::fcntl(conns[i].fd.get(), F_SETFL, flags | O_NONBLOCK);
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    ::epoll_ctl(ep.get(), EPOLL_CTL_ADD, conns[i].fd.get(), &ev);
  }
  const auto rearm = [&](std::size_t i, bool want_out) {
    if (conns[i].out_armed == want_out) return;
    conns[i].out_armed = want_out;
    ::epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.u64 = i;
    ::epoll_ctl(ep.get(), EPOLL_CTL_MOD, conns[i].fd.get(), &ev);
  };
  const auto flush = [&](std::size_t i) {
    OpenConn& oc = conns[i];
    while (!oc.outbuf.empty() && !oc.dead) {
      const ssize_t n =
          ::send(oc.fd.get(), oc.outbuf.data(), oc.outbuf.size(), 0);
      if (n > 0) {
        oc.outbuf.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        oc.dead = true;
        step.errors += oc.inflight.size();
        oc.inflight.clear();
      }
    }
    rearm(i, !oc.outbuf.empty() && !oc.dead);
  };

  std::vector<double> lat_us;
  lat_us.reserve(total);
  const auto t0 = std::chrono::steady_clock::now();
  // Grace period past the nominal step for the tail of responses.
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(step_s + 10.0));
  std::size_t next = 0;  // next request index to send
  std::array<::epoll_event, 64> events{};
  while (step.completed + step.errors < total) {
    const auto now = std::chrono::steady_clock::now();
    if (now > deadline) break;
    // Open loop: every request whose schedule slot has passed goes out
    // now, response progress notwithstanding.
    while (next < total &&
           now >= t0 + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(next) / offered))) {
      const std::size_t i = next % nconns;
      if (!conns[i].dead) {
        conns[i].outbuf += request;
        conns[i].inflight.push_back(std::chrono::steady_clock::now());
        ++step.sent;
        flush(i);
      } else {
        ++step.errors;  // the slot still counts against the step
      }
      ++next;
    }
    int timeout_ms = 50;
    if (next < total) {
      const auto next_at =
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(next) /
                                                 offered));
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_at - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(
          std::clamp<long long>(wait.count(), 0, 50));
    }
    const int nready = ::epoll_wait(ep.get(), events.data(),
                                    static_cast<int>(events.size()),
                                    timeout_ms);
    for (int e = 0; e < nready; ++e) {
      const std::size_t i = events[static_cast<std::size_t>(e)].data.u64;
      const std::uint32_t what = events[static_cast<std::size_t>(e)].events;
      OpenConn& oc = conns[i];
      if (oc.dead) continue;
      if ((what & EPOLLOUT) != 0u) flush(i);
      if ((what & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0u) {
        char buf[65536];
        for (;;) {
          const ssize_t n = ::recv(oc.fd.get(), buf, sizeof buf, 0);
          if (n > 0) {
            oc.inbuf.append(buf, static_cast<std::size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            oc.dead = true;
            step.errors += oc.inflight.size();
            oc.inflight.clear();
            break;
          }
        }
        parse_replies(oc, lat_us, &step.completed, &step.errors);
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  step.achieved = secs > 0 ? static_cast<double>(step.sent) / secs : 0.0;
  step.p50_us = percentile_us(lat_us, 50);
  step.p99_us = percentile_us(lat_us, 99);
  return step;
}

/// Open-loop mode: preload one shared session, then sweep the offered-load
/// steps, printing the p99-vs-offered-load curve and optionally archiving
/// it as a JSON artifact (the CI saturation plot).
int run_open_loop(const Config& cfg, const std::string& layout_text) {
  std::signal(SIGPIPE, SIG_IGN);
  const TcpChild child = spawn_tcp_server(cfg);
  if (child.pid < 0) {
    std::fprintf(stderr, "loadgen: cannot spawn %s --listen 0\n",
                 cfg.server.c_str());
    return 1;
  }
  std::printf("spawned %s (pid %d, %zu reactors) on 127.0.0.1:%u\n",
              cfg.server.c_str(), static_cast<int>(child.pid), cfg.reactors,
              static_cast<unsigned>(child.port));

  int failures = 0;
  std::vector<OpenStep> steps;
  try {
    const std::string key = serve::SessionCache::content_key(layout_text);
    {
      // Warm the shared session once so every paced ROUTE is a cache hit —
      // the curve measures dispatch, not repeated layout parsing.
      const net::ScopedFd sock = net::tcp_connect(child.port);
      serve::FdTransport transport(sock.get());
      const Reply loaded =
          transact(transport.out(), transport.in(),
                   "LOAD " + std::to_string(layout_text.size()), layout_text);
      transact(transport.out(), transport.in(), "QUIT");
      if (!loaded.ok) {
        std::fprintf(stderr, "open-loop: LOAD failed: %s\n",
                     loaded.error.c_str());
        ::kill(child.pid, SIGKILL);
        ::waitpid(child.pid, nullptr, 0);
        return 1;
      }
    }
    const std::string request = "ROUTE " + key + "\n";

    std::istringstream is(cfg.offered);
    std::string tok;
    std::printf("  %10s %10s %8s %9s %7s %10s %10s\n", "offered", "achieved",
                "sent", "completed", "errors", "p50_us", "p99_us");
    while (std::getline(is, tok, ',')) {
      const double offered = std::strtod(tok.c_str(), nullptr);
      if (offered <= 0) continue;
      const OpenStep step =
          run_open_step(child.port, request, offered, cfg.step_s, cfg.conns);
      std::printf("  %10.0f %10.1f %8zu %9zu %7zu %10.0f %10.0f\n",
                  step.offered, step.achieved, step.sent, step.completed,
                  step.errors, step.p50_us, step.p99_us);
      // A step that lost responses (beyond ERRs, which complete) means the
      // tail outlived the grace window — saturation is data, losses are not.
      if (step.completed + step.errors < step.sent) ++failures;
      steps.push_back(step);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "open-loop: fatal: %s\n", e.what());
    ++failures;
  }

  if (!cfg.curve_out.empty()) {
    std::ofstream os(cfg.curve_out);
    if (!os) {
      std::fprintf(stderr, "open-loop: cannot write %s\n",
                   cfg.curve_out.c_str());
      ++failures;
    } else {
      os << "{\n  \"connections\": " << cfg.conns
         << ",\n  \"reactors\": " << cfg.reactors
         << ",\n  \"step_s\": " << cfg.step_s << ",\n  \"curve\": [";
      bool first = true;
      for (const OpenStep& s : steps) {
        os << (first ? "\n" : ",\n") << "    {\"offered_rps\": " << s.offered
           << ", \"achieved_rps\": " << s.achieved << ", \"sent\": " << s.sent
           << ", \"completed\": " << s.completed
           << ", \"errors\": " << s.errors << ", \"p50_us\": " << s.p50_us
           << ", \"p99_us\": " << s.p99_us << '}';
        first = false;
      }
      os << "\n  ]\n}\n";
      std::printf("p99-vs-offered-load curve written to %s\n",
                  cfg.curve_out.c_str());
    }
  }

  ::kill(child.pid, SIGINT);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "server did not shut down cleanly (status %d)\n",
                 status);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

#endif  // GCR_LOADGEN_HAVE_EPOLL

// ------------------------------------------------------------ restart smoke

/// SIGINTs a server and reports whether it drained and exited cleanly.
bool drain_server(pid_t pid) {
  ::kill(pid, SIGINT);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// Restart-under-load smoke: proves a pinned session survives a full
/// server restart.  Server 1 (--snapshot-dir) serves HELLO + LOAD + PIN +
/// COMMIT + SAVE; the reference REROUTE answer is recorded *after* the
/// SAVE, so the snapshot captures exactly the pre-REROUTE state that
/// answer was computed from.  Server 1 is then SIGINT-drained and server 2
/// starts with --restore-dir: claiming the same handle and repeating the
/// REROUTE must reproduce the recorded body byte-for-byte (timing meta
/// excluded — only routed/failed/wirelength and the dump are compared).
int run_restart(const Config& cfg, const std::string& layout_text,
                const layout::Layout& lay) {
  std::signal(SIGPIPE, SIG_IGN);
  if (lay.nets().size() < 2) {
    std::fprintf(stderr, "restart smoke needs a workload with >= 2 nets\n");
    return 1;
  }
  std::string all_nets;
  for (const auto& net : lay.nets()) {
    if (!all_nets.empty()) all_nets += ',';
    all_nets += net.name();
  }
  const std::string rip =
      lay.nets()[0].name() + "," + lay.nets()[1].name();

  int failures = 0;
  const auto fail = [&failures](const std::string& why) {
    std::fprintf(stderr, "restart smoke: %s\n", why.c_str());
    ++failures;
  };

  std::string handle;
  std::string want_body;
  long long want_routed = -1, want_failed = -1, want_wirelength = -1;
  long long committed_at_save = -1;

  // ---- phase 1: pin, commit, save, record the reference answer, drain.
  {
    const TcpChild server =
        spawn_tcp_server(cfg, {"--snapshot-dir", cfg.restart_dir});
    if (server.pid < 0) {
      std::fprintf(stderr, "loadgen: cannot spawn %s --listen 0\n",
                   cfg.server.c_str());
      return 1;
    }
    std::printf("restart smoke: server 1 (pid %d) on 127.0.0.1:%u\n",
                static_cast<int>(server.pid),
                static_cast<unsigned>(server.port));
    {
      const net::ScopedFd sock = net::tcp_connect(server.port);
      serve::FdTransport transport(sock.get());
      std::istream& in = transport.in();
      std::ostream& out = transport.out();

      const Reply hello = transact(out, in, "HELLO");
      if (!hello.ok) {
        fail("HELLO: " + hello.error);
      } else if (meta_value(hello.meta, "version") != 2) {
        fail("HELLO: unexpected protocol version (" + hello.meta + ")");
      }

      const Reply loaded = transact(
          out, in, "LOAD " + std::to_string(layout_text.size()), layout_text);
      if (!loaded.ok) {
        fail("LOAD: " + loaded.error);
      } else {
        const std::string key = meta_token(loaded.meta, "session");
        const Reply pinned = transact(out, in, "PIN " + key);
        if (!pinned.ok) {
          fail("PIN: " + pinned.error);
        } else {
          handle = meta_token(pinned.meta, "pin");
          const Reply committed =
              transact(out, in, "COMMIT " + handle + " nets=" + all_nets);
          if (!committed.ok) {
            fail("COMMIT: " + committed.error);
          } else {
            committed_at_save = meta_value(committed.meta, "committed");
            const Reply saved =
                transact(out, in, "SAVE " + handle + " restart-smoke.snap");
            if (!saved.ok) {
              fail("SAVE: " + saved.error);
            } else if (meta_value(saved.meta, "bytes") <= 0) {
              fail("SAVE: empty snapshot (" + saved.meta + ")");
            }
            const Reply rr =
                transact(out, in, "REROUTE " + handle + " nets=" + rip);
            if (!rr.ok) {
              fail("REROUTE (live): " + rr.error);
            } else {
              want_body = rr.body;
              want_routed = meta_value(rr.meta, "routed");
              want_failed = meta_value(rr.meta, "failed");
              want_wirelength = meta_value(rr.meta, "wirelength");
            }
          }
        }
      }
      transact(out, in, "QUIT");
    }
    if (!drain_server(server.pid)) fail("server 1 did not drain cleanly");
  }
  if (failures > 0 || handle.empty()) return 1;

  // ---- phase 2: restore, claim the handle, repeat the REROUTE, compare.
  {
    const TcpChild server =
        spawn_tcp_server(cfg, {"--restore-dir", cfg.restart_dir});
    if (server.pid < 0) {
      std::fprintf(stderr, "loadgen: cannot respawn %s --listen 0\n",
                   cfg.server.c_str());
      return 1;
    }
    std::printf("restart smoke: server 2 (pid %d) on 127.0.0.1:%u\n",
                static_cast<int>(server.pid),
                static_cast<unsigned>(server.port));
    {
      const net::ScopedFd sock = net::tcp_connect(server.port);
      serve::FdTransport transport(sock.get());
      std::istream& in = transport.in();
      std::ostream& out = transport.out();

      const Reply claimed = transact(out, in, "PIN " + handle);
      if (!claimed.ok) {
        fail("PIN (restored): " + claimed.error);
      } else if (meta_value(claimed.meta, "committed") != committed_at_save) {
        fail("restored pin committed-count mismatch (" + claimed.meta + ")");
      }
      const Reply rr = transact(out, in, "REROUTE " + handle + " nets=" + rip);
      if (!rr.ok) {
        fail("REROUTE (restored): " + rr.error);
      } else {
        if (rr.body != want_body) fail("restored REROUTE body differs");
        if (meta_value(rr.meta, "routed") != want_routed ||
            meta_value(rr.meta, "failed") != want_failed ||
            meta_value(rr.meta, "wirelength") != want_wirelength) {
          fail("restored REROUTE counters differ (" + rr.meta + ")");
        }
      }
      transact(out, in, "QUIT");
    }
    if (!drain_server(server.pid)) fail("server 2 did not drain cleanly");
  }
  if (failures == 0) {
    std::printf("restart smoke: pinned session survived restart, "
                "REROUTE byte-identical (%lld routed, wirelength %lld)\n",
                want_routed, want_wirelength);
  }
  return failures == 0 ? 0 : 1;
}

#else  // !GCR_LOADGEN_HAVE_FORK

int run_against_server(const Config&, const std::string&,
                       const layout::Layout&, const route::NetlistResult&) {
  std::fprintf(stderr, "--server requires a POSIX platform\n");
  return 1;
}

int run_tcp(const Config&, const std::string&, const layout::Layout&,
            const route::NetlistResult&) {
  std::fprintf(stderr, "--tcp requires a POSIX platform\n");
  return 1;
}

int run_restart(const Config&, const std::string&, const layout::Layout&) {
  std::fprintf(stderr, "--restart-dir requires a POSIX platform\n");
  return 1;
}

#endif  // GCR_LOADGEN_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    const auto number = [&](std::size_t limit, std::size_t* out) {
      if (v == nullptr) return false;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || v[0] == '-' || parsed > limit) {
        return false;
      }
      *out = static_cast<std::size_t>(parsed);
      ++i;
      return true;
    };
    std::size_t n = 0;
    if (arg == "--server" && v != nullptr) {
      cfg.server = v;
      ++i;
    } else if (arg == "--transport" && v != nullptr) {
      const std::string t = v;
      if (t != "socket" && t != "pipe") return usage(argv[0]);
      cfg.pipe_transport = t == "pipe";
      ++i;
    } else if (arg == "--tcp") {
      cfg.tcp = true;
    } else if (arg == "--optimize") {
      cfg.optimize = true;
    } else if (arg == "--gen") {
      cfg.gen = true;
    } else if (arg == "--clients" && number(1024, &n)) {
      cfg.clients = std::max<std::size_t>(n, 1);
    } else if (arg == "--requests" && number(1 << 20, &n)) {
      cfg.requests = n;
    } else if (arg == "--workers" && number(1024, &n)) {
      cfg.workers = n;
    } else if (arg == "--reactors" && number(256, &n)) {
      cfg.reactors = std::max<std::size_t>(n, 1);
    } else if (arg == "--open-loop") {
      cfg.open_loop = true;
    } else if (arg == "--offered" && v != nullptr && v[0] != '\0') {
      cfg.offered = v;
      ++i;
    } else if (arg == "--conns" && number(1 << 16, &n)) {
      cfg.conns = std::max<std::size_t>(n, 1);
    } else if (arg == "--step-s" && number(3600, &n)) {
      cfg.step_s = static_cast<double>(std::max<std::size_t>(n, 1));
    } else if (arg == "--curve-out" && v != nullptr && v[0] != '\0') {
      cfg.curve_out = v;
      ++i;
    } else if (arg == "--cells" && number(4096, &n)) {
      cfg.cells = std::max<std::size_t>(n, 2);
    } else if (arg == "--nets" && number(1 << 16, &n)) {
      cfg.nets = n;
    } else if (arg == "--seed" && number(SIZE_MAX, &n)) {
      cfg.seed = n;
    } else if (arg == "--deadline-ms" && number(1 << 30, &n)) {
      cfg.deadline_ms = static_cast<long>(n);
    } else if (arg == "--restart-dir" && v != nullptr && v[0] != '\0') {
      cfg.restart_dir = v;
      ++i;
    } else if (arg == "--stats-out" && v != nullptr && v[0] != '\0') {
      cfg.stats_out = v;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (!cfg.stats_out.empty() && !cfg.tcp) {
    std::fprintf(stderr, "--stats-out needs --tcp (the audit connection "
                 "rides the TCP front-end)\n");
    return usage(argv[0]);
  }
  if (cfg.gen && cfg.server.empty()) {
    std::fprintf(stderr, "--gen needs --server PATH (GEN is a protocol verb)\n");
    return usage(argv[0]);
  }
  if (cfg.gen && cfg.optimize) {
    // OPTIMIZE cross-checks ride the shared workload; GEN gives every
    // client its own.  Keep the reference bookkeeping simple.
    std::fprintf(stderr, "--gen and --optimize are mutually exclusive\n");
    return usage(argv[0]);
  }
  if (cfg.open_loop && !cfg.tcp) {
    std::fprintf(stderr, "--open-loop needs --tcp\n");
    return usage(argv[0]);
  }

  try {
    const layout::Layout lay = make_workload(cfg);
    const std::string text = io::write_layout_string(lay);
    // One in-process reference route: the ground truth every response is
    // compared against (independent routing is deterministic).
    const route::NetlistRouter ref_router(lay);
    const route::NetlistResult reference = ref_router.route_all();
    std::printf("workload: %zu cells, %zu nets, reference wirelength %lld "
                "(%zu routed, %zu failed)\n",
                lay.cells().size(), lay.nets().size(),
                static_cast<long long>(reference.total_wirelength),
                reference.routed, reference.failed);

    if (cfg.server.empty()) {
      if (cfg.tcp) {
        std::fprintf(stderr, "--tcp needs --server PATH\n");
        return usage(argv[0]);
      }
      if (!cfg.restart_dir.empty()) {
        std::fprintf(stderr, "--restart-dir needs --server PATH\n");
        return usage(argv[0]);
      }
      return run_inproc(cfg, text, reference);
    }
    if (!cfg.restart_dir.empty()) return run_restart(cfg, text, lay);
    if (cfg.open_loop) {
#if GCR_LOADGEN_HAVE_EPOLL
      return run_open_loop(cfg, text);
#else
      std::fprintf(stderr, "--open-loop requires Linux epoll\n");
      return 2;
#endif
    }
    if (cfg.tcp) return run_tcp(cfg, text, lay, reference);
    return run_against_server(cfg, text, lay, reference);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: fatal: %s\n", e.what());
    return 1;
  }
}
