// Chip assembly: the paper's motivating scenario end to end.
//
// "Large components, or macros ... can then be connected together, along
// with the pads, to form a complete chip. ... The goal of a general cell
// routing system then, is to automate this final step of chip assembly."
//
// Flow: random macro placement -> pins/nets -> independent gridless global
// routing -> congestion-driven second pass -> dynamic channel assignment +
// left-edge track assignment -> two-layer track realization -> SVG dumps.
//
//   $ ./chip_assembly [cells] [nets] [seed]
//
// Writes chip_global.svg (global routes) in the working directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "congestion/two_pass.hpp"
#include "detail/detailed_router.hpp"
#include "detail/track_router.hpp"
#include "io/svg.hpp"
#include "workload/floorplan.hpp"
#include "workload/netgen.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcr;

  const std::size_t cells = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 25;
  const std::size_t nets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // --- Placement (a silicon compiler or floorplanner would supply this).
  workload::FloorplanOptions fp;
  fp.cell_count = cells;
  fp.boundary = geom::Rect{0, 0, 1024, 1024};
  fp.seed = seed;
  layout::Layout chip = workload::random_floorplan(fp);
  workload::PinGenOptions pg;
  pg.seed = seed + 1;
  workload::sprinkle_pins(chip, pg);
  workload::NetGenOptions ng;
  ng.seed = seed + 2;
  ng.net_count = nets;
  workload::generate_nets(chip, ng);
  if (!chip.valid()) {
    std::puts("placement violates the layout rules");
    return 1;
  }
  std::printf("chip: %zu cells, %zu pins, %zu nets\n", chip.cells().size(),
              chip.pin_count(), chip.nets().size());

  // --- Global routing: every net independently, congestion second pass.
  auto t0 = std::chrono::steady_clock::now();
  const congestion::TwoPassRouter global_router(chip);
  congestion::TwoPassOptions copts;
  copts.passages.wire_pitch = 2;
  const auto report = global_router.run(copts);
  const double global_ms = ms_since(t0);

  std::printf("global: %zu/%zu nets routed, wirelength %lld, "
              "overflow %zu -> %zu, %zu rerouted, %.1f ms\n",
              report.final_pass.routed, chip.nets().size(),
              static_cast<long long>(report.final_pass.total_wirelength),
              report.overflow_before, report.overflow_after,
              report.nets_rerouted, global_ms);

  // --- Detailed routing: channels, tracks, then full track realization.
  t0 = std::chrono::steady_clock::now();
  const detail::DetailedRouter channel_stage;
  const auto structural = channel_stage.run(report.final_pass);
  detail::TrackRouter track_stage(chip);
  const auto realized = track_stage.realize(report.final_pass);
  const double detail_ms = ms_since(t0);

  std::printf("detail: %zu channels, %zu tracks (widest %zu), %zu wires, "
              "%zu vias, %zu failed, %.1f ms\n",
              structural.channel_count, structural.total_tracks,
              structural.max_channel_tracks, realized.wires.size(),
              realized.via_count, realized.connections_failed, detail_ms);
  std::printf("paper's claim (global < detailed time): %s (%.1fx)\n",
              global_ms < detail_ms ? "holds" : "does NOT hold",
              global_ms > 0 ? detail_ms / global_ms : 0.0);

  // --- Artifacts.
  if (io::save_svg("chip_global.svg", chip, &report.final_pass,
                   {.scale = 1.0, .draw_cell_names = false})) {
    std::puts("wrote chip_global.svg");
  }
  return 0;
}
