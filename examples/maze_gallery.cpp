// Maze gallery: renders the paper-figure replicas and the maze workloads as
// SVGs, each with its optimal gridless route drawn in — quick visual
// confirmation of what the benchmarks measure.
//
//   $ ./maze_gallery [output_dir]

#include <cstdio>
#include <string>

#include "core/gridless_router.hpp"
#include "io/svg.hpp"
#include "workload/figures.hpp"

namespace {

using namespace gcr;

bool render(const workload::PointQuery& q, const std::string& path) {
  const spatial::ObstacleIndex index(q.layout.boundary(), q.layout.obstacles());
  const spatial::EscapeLineSet lines(index);
  const route::GridlessRouter router(index, lines);
  const auto r = router.route(q.s, q.d);

  // Wrap the single route as a one-net result so the SVG writer draws it.
  route::NetlistResult result;
  route::NetRoute nr;
  nr.ok = r.found;
  nr.segments = r.segments();
  nr.wirelength = r.length;
  result.routes.push_back(std::move(nr));

  if (!io::save_svg(path, q.layout, &result,
                    {.scale = 4.0, .draw_pins = false,
                     .draw_cell_names = false})) {
    return false;
  }
  std::printf("%-22s route %s, length %lld (manhattan %lld), %zu expanded\n",
              path.c_str(), r.found ? "found" : "NOT FOUND",
              static_cast<long long>(r.length),
              static_cast<long long>(manhattan(q.s, q.d)),
              r.stats.nodes_expanded);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";
  bool ok = true;
  ok &= render(workload::figure1_layout(), dir + "figure1.svg");
  ok &= render(workload::inverted_corner_layout(), dir + "figure2.svg");
  for (const std::size_t teeth : {4, 8}) {
    ok &= render(workload::comb_maze(teeth),
                 dir + "comb" + std::to_string(teeth) + ".svg");
  }
  for (const std::size_t turns : {2, 4}) {
    ok &= render(workload::spiral_maze(turns),
                 dir + "spiral" + std::to_string(turns) + ".svg");
  }
  return ok ? 0 : 1;
}
